//! Determinism gates for the city-scale subsystem: scenario generation,
//! cluster decomposition, and — critically — the cluster-parallel solve
//! must be bit-identical at any worker count and across repeat runs.

use greencell_sim::{CitySim, ClusterSet, Scenario};

#[test]
fn city_generation_is_deterministic() {
    let a = Scenario::city(300, 6, Scenario::default_city_area(6), 17);
    let b = Scenario::city(300, 6, Scenario::default_city_area(6), 17);
    assert_eq!(
        a, b,
        "scenario construction must be a pure function of seed"
    );
    assert_eq!(a.build_layout(), b.build_layout());
    let la = a.build_layout();
    assert_eq!(
        ClusterSet::decompose(&la, &a),
        ClusterSet::decompose(&b.build_layout(), &b)
    );
}

#[test]
fn worker_count_does_not_change_results() {
    let mut s = Scenario::city(240, 6, Scenario::default_city_area(6), 23);
    s.horizon = 15;
    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut sim = CitySim::with_workers(&s, workers).expect("city path builds");
        assert!(
            sim.controller().solver_count() >= 2,
            "need several clusters for the parallelism to be real"
        );
        runs.push(sim.run().expect("run completes"));
    }
    assert_eq!(runs[0], runs[1], "1 vs 2 workers diverged");
    assert_eq!(runs[0], runs[2], "1 vs 4 workers diverged");
}

#[test]
fn repeat_city_runs_are_bit_identical() {
    let mut s = Scenario::city(120, 3, Scenario::default_city_area(3), 31);
    s.horizon = 10;
    let mut first = CitySim::new(&s).expect("city path builds");
    let mut second = CitySim::new(&s).expect("city path builds");
    let a = first.run().expect("first run completes");
    let b = second.run().expect("second run completes");
    assert_eq!(a, b);
}
