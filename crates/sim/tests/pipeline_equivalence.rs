//! Golden-fingerprint equivalence of the staged pipeline controller
//! against the frozen pre-refactor oracle (`Controller::step_reference`).
//!
//! Two simulators are built from the *same* scenario; one is flipped into
//! reference mode. Both see identical observations and fault plans
//! (common random numbers), so every per-slot [`SlotReport`] — admissions,
//! routing, energy decisions, degradation events, cost — and the final
//! [`RunMetrics`] must match **bit for bit**, across the clean seed
//! scenarios, all four acceptance fault scenarios, and both degradation
//! policies.
//!
//! [`SlotReport`]: greencell_core::SlotReport
//! [`RunMetrics`]: greencell_sim::RunMetrics

use greencell_core::DegradationPolicy;
use greencell_sim::faults::FaultSpec;
use greencell_sim::{Scenario, Simulator};

/// Steps a pipeline simulator and a reference simulator in lockstep and
/// asserts bit-identical per-slot reports, final metrics, and watchdog
/// verdicts. Returns how many slots completed (shorter than the horizon
/// only when both arms abort identically under the strict policy).
fn assert_equivalent(label: &str, scenario: &Scenario) -> usize {
    let mut pipeline = Simulator::new(scenario).expect("scenario builds");
    let mut oracle = Simulator::new(scenario).expect("scenario builds");
    oracle.set_reference(true);
    for slot in 0..scenario.horizon {
        let a = pipeline.step_with_report();
        let b = oracle.step_with_report();
        assert_eq!(a, b, "{label}: slot {slot} diverged");
        if a.is_err() {
            // Both arms aborted with the identical error (strict policy);
            // neither advanced past this slot.
            return slot;
        }
    }
    assert_eq!(
        pipeline.metrics(),
        oracle.metrics(),
        "{label}: final metrics diverged"
    );
    assert_eq!(
        pipeline.watchdog().report(),
        oracle.watchdog().report(),
        "{label}: watchdog verdicts diverged"
    );
    scenario.horizon
}

/// The four acceptance fault scenarios (see `chaos.rs`): seed 4243 makes
/// the bursty Markov faults demonstrably strike inside 30 slots, and
/// V = 1e4 keeps the queue equilibrium inside the horizon.
fn fault_scenarios(policy: DegradationPolicy) -> Vec<(String, Scenario)> {
    let horizon = 30;
    let specs = [
        ("bs_outage", FaultSpec::bs_outage()),
        (
            "renewable_drought",
            FaultSpec::renewable_drought(horizon / 4, horizon / 2),
        ),
        (
            "price_spike",
            FaultSpec::price_spike(horizon / 4, horizon / 2, 6.0),
        ),
        ("band_loss", FaultSpec::band_loss()),
    ];
    specs
        .into_iter()
        .map(|(label, spec)| {
            let mut s = Scenario::tiny(4243);
            s.horizon = horizon;
            s.v = 1e4;
            s.faults = Some(spec);
            s.degradation = policy;
            (format!("{label}/{policy:?}"), s)
        })
        .collect()
}

/// Clean seed scenarios: the tiny fixture and a shortened paper §VI run
/// (both fault-free, graceful policy — the all-green fast path).
#[test]
fn pipeline_matches_oracle_on_the_seed_scenarios() {
    let tiny = Scenario::tiny(4242);
    assert_eq!(assert_equivalent("tiny", &tiny), tiny.horizon);

    let mut paper = Scenario::paper(7);
    paper.horizon = 40;
    assert_eq!(assert_equivalent("paper", &paper), paper.horizon);
}

/// All four fault scenarios under the graceful ladder: shed → grid-only →
/// drop-schedule → safe-mode rungs fire identically in both drivers.
#[test]
fn pipeline_matches_oracle_under_every_fault_scenario() {
    for (label, scenario) in fault_scenarios(DegradationPolicy::Graceful) {
        let slots = assert_equivalent(&label, &scenario);
        assert_eq!(slots, scenario.horizon, "{label}: graceful run truncated");
    }
}

/// The same four fault scenarios under the strict policy: shedding is
/// still allowed, but any deeper infeasibility must abort — and both
/// drivers must abort on the identical slot with the identical error.
#[test]
fn pipeline_matches_oracle_under_strict_degradation() {
    let mut clean = Scenario::tiny(4242);
    clean.degradation = DegradationPolicy::Strict;
    assert_eq!(
        assert_equivalent("clean/Strict", &clean),
        clean.horizon,
        "the fault-free strict run must complete"
    );
    for (label, scenario) in fault_scenarios(DegradationPolicy::Strict) {
        assert_equivalent(&label, &scenario);
    }
}

/// The kitchen-sink chaos plan — every fault class at once — stays
/// bit-identical through the full graceful ladder.
#[test]
fn pipeline_matches_oracle_under_chaos() {
    for seed in [11, 4243] {
        let mut s = Scenario::tiny(seed);
        s.horizon = 25;
        s.v = 1e4;
        s.faults = Some(FaultSpec::chaos(s.horizon));
        let label = format!("chaos/{seed}");
        let slots = assert_equivalent(&label, &s);
        assert_eq!(slots, s.horizon, "{label}: graceful run truncated");
    }
}

/// The ablation axes ride through the same seam: both S1 schedulers, the
/// one-hop architecture, and the grid-only energy policy resolve to
/// pipeline stages that reproduce the oracle's `match` arms exactly.
#[test]
fn pipeline_matches_oracle_across_policy_axes() {
    let mut sequential = Scenario::tiny(4242);
    sequential.scheduler = greencell_core::SchedulerKind::SequentialFix;
    assert_equivalent("sequential_fix", &sequential);

    let mut one_hop = Scenario::tiny(4242);
    one_hop.architecture = greencell_sim::Architecture::OneHopRenewable;
    assert_equivalent("one_hop", &one_hop);

    let mut grid_only = Scenario::tiny(4242);
    grid_only.energy_policy = greencell_core::EnergyPolicy::GridOnly;
    assert_equivalent("grid_only", &grid_only);
}
