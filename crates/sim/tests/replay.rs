//! Trace record/replay: a recorded run reproduces exactly, and the same
//! weather trace can be replayed under different controller settings for
//! perfectly paired what-if comparisons.

use greencell_sim::{Scenario, Simulator};

#[test]
fn replay_reproduces_the_recorded_run() {
    let scenario = Scenario::tiny(77);
    let mut recorder = Simulator::new(&scenario).expect("build");
    let (metrics, trace) = recorder.run_recording().expect("record");
    assert_eq!(trace.len(), scenario.horizon);

    let mut replayer = Simulator::new(&scenario).expect("build");
    let replayed = replayer.replay(&trace).expect("replay").clone();
    assert_eq!(metrics, replayed);
}

#[test]
fn same_trace_different_v_is_a_paired_comparison() {
    let scenario = Scenario::tiny(78);
    let mut recorder = Simulator::new(&scenario).expect("build");
    let (_, trace) = recorder.run_recording().expect("record");

    // Replay the identical weather under a much smaller V: the admission
    // valve tightens, so no more packets can be admitted than at large V.
    let mut small_v = scenario.clone();
    small_v.v = 1e4;
    let mut sim_small = Simulator::new(&small_v).expect("build");
    let metrics_small = sim_small.replay(&trace).expect("replay").clone();

    let mut large_v = scenario.clone();
    large_v.v = 1e6;
    let mut sim_large = Simulator::new(&large_v).expect("build");
    let metrics_large = sim_large.replay(&trace).expect("replay").clone();

    let admitted_small: f64 = metrics_small.admitted_series().values().iter().sum();
    let admitted_large: f64 = metrics_large.admitted_series().values().iter().sum();
    assert!(
        admitted_small <= admitted_large,
        "smaller V must admit no more ({admitted_small} vs {admitted_large})"
    );
}

#[test]
fn replay_accepts_partial_traces() {
    let scenario = Scenario::tiny(79);
    let mut recorder = Simulator::new(&scenario).expect("build");
    let (_, trace) = recorder.run_recording().expect("record");
    let mut sim = Simulator::new(&scenario).expect("build");
    let metrics = sim.replay(&trace[..5]).expect("replay");
    assert_eq!(metrics.cost_series().len(), 5);
}
