//! Heterogeneous per-session demands: heavier sessions deliver more, and
//! the fairness index reports the imbalance.

use greencell_sim::{Scenario, Simulator};

#[test]
fn heavier_sessions_deliver_more() {
    let mut scenario = Scenario::tiny(42);
    scenario.horizon = 60;
    scenario.sessions = 2;
    scenario.session_demands_kbps = Some(vec![50.0, 200.0]);
    let mut sim = Simulator::new(&scenario).expect("build");
    let metrics = sim.run().expect("run").clone();
    let per = metrics.delivered_per_session();
    assert_eq!(per.len(), 2);
    assert!(
        per[1] > per[0],
        "the 200 kbps session ({}) should out-deliver the 50 kbps one ({})",
        per[1],
        per[0]
    );
    // Imbalanced deliveries ⇒ fairness strictly below 1.
    assert!(metrics.delivery_fairness() < 0.999);
    // Shorter demand lists wrap around instead of panicking.
    let mut wrap = scenario.clone();
    wrap.sessions = 3;
    wrap.session_demands_kbps = Some(vec![100.0]);
    Simulator::new(&wrap).expect("build").run().expect("run");
}

#[test]
fn uniform_override_matches_default() {
    let mut a = Scenario::tiny(9);
    a.horizon = 20;
    let mut b = a.clone();
    b.session_demands_kbps = Some(vec![100.0, 100.0]);
    let ma = greencell_sim::experiments::single_run(&a).expect("a");
    let mb = greencell_sim::experiments::single_run(&b).expect("b");
    assert_eq!(ma, mb, "uniform 100 kbps override must equal the default");
}

#[test]
fn lyapunov_series_is_recorded() {
    let mut scenario = Scenario::tiny(5);
    scenario.horizon = 25;
    let metrics = greencell_sim::experiments::single_run(&scenario).expect("run");
    assert_eq!(metrics.lyapunov_series().len(), 25);
    assert!(metrics.lyapunov_series().values().iter().all(|&l| l >= 0.0));
    assert!(metrics.mean_drift().is_finite());
}
