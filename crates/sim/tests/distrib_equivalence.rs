//! Distributed-driver equivalence and claim-protocol contention tests.
//!
//! The contract under test: the multi-process work-stealing driver
//! produces a `stability_json` **byte-identical** to the in-process sweep
//! engine at any worker-process count — including after a worker is
//! killed mid-sweep (its stale claim is stolen and the point recomputed)
//! — and the on-disk claim protocol has single-winner semantics under
//! real multi-process races.

use greencell_sim::distrib::prepare_work_dir;
use greencell_sim::faults::{FaultSpec, MarkovFault, OutageScope, SlotWindow};
use greencell_sim::{
    derive_point_seed, run_sweep, run_sweep_distributed_stats, DistribOptions, Scenario,
    SweepOptions, SweepPoint, WorkerCommand,
};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_sweep_worker");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("greencell-distrib-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn opts(workers: usize) -> DistribOptions {
    let mut o = DistribOptions::new(workers, WorkerCommand::new(WORKER_BIN, vec![]));
    o.poll = Duration::from_millis(5);
    o
}

/// A heterogeneous sweep: plain tiny points, a fault-laden point, and a
/// city-scale (hotspot placement + diurnal) point — the full scenario
/// codec surface crosses the process boundary.
fn points() -> Vec<SweepPoint> {
    let mut out: Vec<SweepPoint> = (0..3)
        .map(|i| {
            let mut s = Scenario::tiny(derive_point_seed(70, i as u64));
            s.horizon = 8 + 2 * (i % 2);
            s.v *= (i + 1) as f64;
            SweepPoint::new(format!("tiny-{i}"), s)
        })
        .collect();

    let mut faulty = Scenario::tiny(derive_point_seed(70, 100));
    faulty.horizon = 10;
    faulty.faults = Some(FaultSpec {
        node_outage: Some(MarkovFault {
            stay_up: 0.9,
            stay_down: 0.5,
        }),
        outage_scope: OutageScope::All,
        droughts: vec![SlotWindow::new(2, 5)],
        dropout_probability: 0.05,
        ..FaultSpec::default()
    });
    out.push(SweepPoint::new("faulty", faulty));

    let mut city = Scenario::city(24, 2, Scenario::default_city_area(2), 4242);
    city.horizon = 6;
    out.push(SweepPoint::new("city", city));
    out
}

fn spawn_worker(dir: &Path, id: &str, stale_after_ms: u64) -> Child {
    Command::new(WORKER_BIN)
        .args([
            "--dir",
            &dir.display().to_string(),
            "--id",
            id,
            "--stale-after-ms",
            &stale_after_ms.to_string(),
            "--poll-ms",
            "5",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker")
}

fn worker_stats(dir: &Path, id: &str) -> (usize, usize, usize, usize) {
    let text = std::fs::read_to_string(dir.join("stats").join(format!("{id}.json")))
        .unwrap_or_else(|_| panic!("stats for {id}"));
    let v = greencell_trace::json::parse(text.trim()).expect("stats parse");
    let n = |k: &str| v.get(k).and_then(|x| x.as_f64()).expect("stat field") as usize;
    (n("claimed"), n("computed"), n("steals"), n("requeued"))
}

#[test]
fn distributed_sweep_is_byte_identical_at_1_and_3_workers() {
    let all = points();
    let reference = run_sweep(&all, &SweepOptions::serial()).expect("in-process sweep");
    for workers in [1, 3] {
        let dir = temp_dir(&format!("eq{workers}"));
        let (report, stats) =
            run_sweep_distributed_stats(&all, &opts(workers), &dir).expect("distributed sweep");
        assert_eq!(
            report.stability_json(),
            reference.stability_json(),
            "stability report diverged at {workers} worker(s)"
        );
        for (a, b) in report.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.metrics, b.metrics, "metrics diverged for {}", a.label);
        }
        assert_eq!(stats.computed, all.len(), "fresh dir computes every point");
        assert_eq!(stats.salvaged, 0);
        assert_eq!(stats.worker_failures, 0, "no worker may fail");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn finished_work_dir_is_salvaged_not_recomputed() {
    let all = points();
    let dir = temp_dir("salvage");
    let (first, _) = run_sweep_distributed_stats(&all, &opts(1), &dir).expect("first run");
    let (second, stats) = run_sweep_distributed_stats(&all, &opts(1), &dir).expect("second run");
    assert_eq!(stats.salvaged, all.len(), "every result salvaged");
    assert_eq!(stats.computed, 0, "nothing recomputed");
    assert_eq!(second.outcomes, first.outcomes);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn killed_worker_mid_point_is_stolen_and_the_sweep_stays_byte_identical() {
    // Point 0 is deliberately slow so the doomed worker is killed while
    // holding its claim with no result written.
    let mut all = points();
    let mut slow = Scenario::tiny(derive_point_seed(70, 500));
    slow.horizon = 600;
    all.insert(0, SweepPoint::new("slow", slow));
    let reference = run_sweep(&all, &SweepOptions::serial()).expect("in-process sweep");

    let dir = temp_dir("kill");
    prepare_work_dir(&all, &dir).expect("stage work dir");

    // The doomed worker scans in index order, so it claims the slow point
    // first. Kill it as soon as that claim appears.
    let mut doomed = spawn_worker(&dir, "doomed", 60_000);
    let claim = dir.join("claims").join("p0.claim");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !claim.exists() {
        assert!(Instant::now() < deadline, "claim p0 never appeared");
        std::thread::sleep(Duration::from_millis(2));
    }
    doomed.kill().expect("kill worker");
    doomed.wait().expect("reap worker");
    assert!(
        !dir.join("results").join("p0.json").exists(),
        "the doomed worker must die before finishing its point"
    );

    // Two fresh workers finish the queue: the orphaned claim goes stale
    // (200 ms) and exactly one of them steals and recomputes the point.
    let survivors = [spawn_worker(&dir, "s0", 200), spawn_worker(&dir, "s1", 200)];
    for mut child in survivors {
        assert!(child.wait().expect("wait worker").success());
    }
    // At least one steal must happen (the orphan). More are legal: the
    // slow point outlives the 200 ms staleness window, so the other
    // survivor may re-steal mid-compute — the duplicate compute is
    // deterministic and harmless by design.
    let steals: usize = ["s0", "s1"].iter().map(|id| worker_stats(&dir, id).2).sum();
    assert!(steals >= 1, "the orphaned claim must be stolen");

    // The driver then merges the worker-written results (same points →
    // same manifest bytes) without recomputing anything, and the final
    // artifact matches the in-process engine byte for byte.
    let (report, stats) = run_sweep_distributed_stats(&all, &opts(1), &dir).expect("merge sweep");
    assert_eq!(report.stability_json(), reference.stability_json());
    assert_eq!(stats.salvaged, all.len(), "all results were already there");
    assert_eq!(stats.computed, 0);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn two_processes_racing_for_one_point_yield_exactly_one_owner() {
    let point = vec![SweepPoint::new("only", {
        let mut s = Scenario::tiny(7);
        s.horizon = 30;
        s
    })];
    let dir = temp_dir("race");
    prepare_work_dir(&point, &dir).expect("stage work dir");

    let a = spawn_worker(&dir, "a", 60_000);
    let b = spawn_worker(&dir, "b", 60_000);
    for mut child in [a, b] {
        let status = child.wait().expect("wait worker");
        assert!(status.success(), "workers must exit cleanly");
    }
    let (claimed_a, computed_a, steals_a, _) = worker_stats(&dir, "a");
    let (claimed_b, computed_b, steals_b, _) = worker_stats(&dir, "b");
    assert_eq!(
        claimed_a + claimed_b,
        1,
        "exclusive create admits exactly one claimant"
    );
    assert_eq!(computed_a + computed_b, 1, "the point runs exactly once");
    assert_eq!(steals_a + steals_b, 0, "a live claim is never stolen");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn backdated_stale_claim_is_stolen() {
    let point = vec![SweepPoint::new("abandoned", {
        let mut s = Scenario::tiny(11);
        s.horizon = 6;
        s
    })];
    let dir = temp_dir("stale");
    prepare_work_dir(&point, &dir).expect("stage work dir");

    // A claim from a worker that died an hour ago: create it, then
    // backdate its mtime so staleness is deterministic, not timing-based.
    let claim = dir.join("claims").join("p0.claim");
    let file = std::fs::File::create(&claim).expect("orphan claim");
    let old = SystemTime::now() - Duration::from_secs(3600);
    file.set_times(std::fs::FileTimes::new().set_modified(old))
        .expect("backdate claim");
    drop(file);

    let mut worker = spawn_worker(&dir, "thief", 1_000);
    assert!(worker.wait().expect("wait worker").success());
    let (claimed, computed, steals, _) = worker_stats(&dir, "thief");
    assert_eq!(steals, 1, "the stale claim must be stolen");
    assert_eq!(computed, 1);
    assert_eq!(claimed, 0, "the point was never freshly claimable");
    assert!(dir.join("results").join("p0.json").exists());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupt_result_is_quarantined_requeued_and_never_reread() {
    let all = points();
    let dir = temp_dir("corrupt");
    let (first, _) = run_sweep_distributed_stats(&all, &opts(1), &dir).expect("first run");

    // Flip a payload byte in one result: the checksum must catch it.
    let victim = dir.join("results").join("p1.json");
    let text = std::fs::read_to_string(&victim).expect("read result");
    let payload_start = text.find('\n').expect("two lines") + 1;
    let mut bytes = text.into_bytes();
    bytes[payload_start + 40] ^= 0x01;
    std::fs::write(&victim, &bytes).expect("corrupt result");

    let (second, stats) = run_sweep_distributed_stats(&all, &opts(1), &dir).expect("second run");
    assert_eq!(stats.requeued, 1, "the bad result is requeued once");
    assert_eq!(stats.computed, 1, "only the bad point recomputes");
    assert_eq!(stats.salvaged, all.len() - 1);
    // Deterministic fields match exactly; full-outcome equality would
    // compare the recomputed point's wall-clock telemetry, which rightly
    // differs.
    assert_eq!(second.stability_json(), first.stability_json());
    for (a, b) in second.outcomes.iter().zip(&first.outcomes) {
        assert_eq!(a.metrics, b.metrics, "metrics diverged for {}", a.label);
    }

    // The quarantined bytes survive untouched for postmortem — the run
    // recomputed from scratch rather than re-reading them.
    let quarantine = dir.join("results").join("p1.json.corrupt");
    assert_eq!(
        std::fs::read(&quarantine).expect("quarantine file").len(),
        bytes.len(),
        "quarantined file must keep the corrupt image"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
