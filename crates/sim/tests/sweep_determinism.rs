//! The sweep engine's core promise: results are bit-identical regardless
//! of worker count or scheduling, because every point's randomness is
//! sealed inside its own scenario seed and outcomes land in
//! submission-order slots.

use greencell_sim::{run_sweep, run_sweep_reseeded, Scenario, SweepOptions, SweepPoint};

fn points() -> Vec<SweepPoint> {
    // ≥ 8 points mixing scenario shapes and seeds so scheduling-order bugs
    // would have many chances to show.
    let mut out = Vec::new();
    for i in 0..6 {
        out.push(SweepPoint::new(
            format!("tiny{i}"),
            Scenario::tiny(1000 + i as u64),
        ));
    }
    for i in 0..3 {
        let mut s = Scenario::tiny(2000 + i as u64);
        s.horizon = 10 + 2 * i;
        s.sessions = 1 + i % 2;
        out.push(SweepPoint::new(format!("shaped{i}"), s));
    }
    out
}

/// Serializes everything determinism covers — the full metric series and
/// run identity, but *not* wall-clock telemetry (timing is inherently
/// run-dependent).
fn deterministic_bytes(report: &greencell_sim::SweepReport) -> Vec<u8> {
    let mut buf = String::new();
    for o in &report.outcomes {
        buf.push_str(&format!(
            "{}|{}|{}|{:?}|{:?}\n",
            o.label, o.seed, o.penalty_b, o.relaxed_admitted, o.metrics
        ));
    }
    buf.into_bytes()
}

#[test]
fn serial_and_parallel_sweeps_are_bit_identical() {
    let pts = points();
    assert!(pts.len() >= 8);
    let serial = run_sweep(&pts, &SweepOptions::serial()).unwrap();
    let parallel = run_sweep(&pts, &SweepOptions::with_threads(4)).unwrap();
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    assert_eq!(
        deterministic_bytes(&serial),
        deterministic_bytes(&parallel),
        "parallel sweep diverged from the serial baseline"
    );
}

#[test]
fn reseeded_sweeps_are_bit_identical_across_thread_counts() {
    let pts = points();
    let serial = run_sweep_reseeded(99, &pts, &SweepOptions::serial()).unwrap();
    let parallel = run_sweep_reseeded(99, &pts, &SweepOptions::with_threads(4)).unwrap();
    assert_eq!(deterministic_bytes(&serial), deterministic_bytes(&parallel),);
    // Reseeding actually replaced the submitted seeds.
    for (o, p) in serial.outcomes.iter().zip(&pts) {
        assert_ne!(o.seed, p.scenario.seed);
    }
}

#[test]
fn repeated_runs_reproduce_exactly() {
    let pts = points();
    let a = run_sweep(&pts, &SweepOptions::with_threads(3)).unwrap();
    let b = run_sweep(&pts, &SweepOptions::with_threads(3)).unwrap();
    assert_eq!(deterministic_bytes(&a), deterministic_bytes(&b));
}
