//! Equivalence gate for the city-scale sharded path.
//!
//! With pruning disabled (`gain_floor = 0`, i.e. cutoff = ∞) the
//! decomposition is a single cluster and [`CitySim`] must replay the
//! dense [`Simulator`] **bit for bit**: same observation streams, same
//! per-slot [`greencell_core::SlotReport`]s, down to every `f64`
//! diagnostic. Pinned on the paper scenario, the tiny scenario, and an
//! unpruned city scenario (hotspot placement + diurnal traffic still
//! active, so those knobs are covered by the gate too).

use greencell_sim::{CitySim, Scenario, Simulator};

fn assert_city_matches_dense(label: &str, scenario: &Scenario) {
    assert_eq!(
        scenario.gain_floor, 0.0,
        "{label}: the bit-identity gate needs pruning off (one cluster)"
    );
    let mut dense = Simulator::new(scenario).expect("dense path builds");
    let mut city = CitySim::new(scenario).expect("sharded path builds");
    assert_eq!(
        city.controller().decomposition().len(),
        1,
        "{label}: cutoff = ∞ must give exactly one cluster"
    );
    for slot in 0..scenario.horizon {
        let d = dense.step_with_report().expect("dense slot steps");
        let c = city.step().expect("sharded slot steps");
        assert_eq!(d, c, "{label}: slot {slot} diverged");
    }
}

#[test]
fn paper_scenario_is_bit_identical() {
    let mut s = Scenario::paper(42);
    s.horizon = 40;
    assert_city_matches_dense("paper", &s);
}

#[test]
fn tiny_scenario_is_bit_identical() {
    assert_city_matches_dense("tiny", &Scenario::tiny(7));
}

#[test]
fn unpruned_city_scenario_is_bit_identical() {
    let mut s = Scenario::city(60, 2, Scenario::default_city_area(2), 9);
    s.gain_floor = 0.0; // cutoff = ∞: hotspots + diurnal stay, pruning off
    s.horizon = 25;
    assert_city_matches_dense("city-unpruned", &s);
}

#[test]
fn single_cluster_sub_network_is_the_dense_network() {
    let s = Scenario::tiny(3);
    let city = CitySim::new(&s).expect("sharded path builds");
    let dense = s.build_network().expect("dense network builds");
    let single = city
        .controller()
        .single_network()
        .expect("one cluster covers everything");
    let (st, dt) = (single.topology(), dense.topology());
    assert_eq!(st.len(), dt.len());
    for i in st.nodes().iter().zip(dt.nodes()) {
        assert_eq!(i.0.kind(), i.1.kind());
    }
    for (i, j) in dt.ordered_pairs() {
        // Bitwise-equal gains: the sub-network is assembled by the same
        // builder path with the same inputs.
        assert_eq!(st.gain(i, j), dt.gain(i, j), "gain ({i:?}, {j:?})");
    }
    assert_eq!(single.session_count(), dense.session_count());
}

/// A *pruned* city run decomposes into several clusters, completes its
/// horizon cleanly (no degradation events in a fault-free calibrated
/// scenario), serves traffic, and keeps queues bounded. Full reports are
/// deliberately not compared against the dense pipeline here: dense
/// routing may push packets onto never-schedulable cross-cluster
/// zero-gain links (phantom queues), which the sharded path excludes by
/// construction — the documented, principled divergence.
#[test]
fn pruned_city_run_is_clean_and_decomposed() {
    let mut s = Scenario::city(80, 3, Scenario::default_city_area(3), 13);
    s.horizon = 20;
    let mut city = CitySim::new(&s).expect("sharded path builds");
    assert!(
        city.controller().decomposition().len() > 1,
        "calibrated city should decompose into several clusters"
    );
    let reports = city.run().expect("pruned run completes");
    assert_eq!(reports.len(), s.horizon);
    assert!(
        reports.iter().all(|r| r.degradation.is_empty()),
        "fault-free calibrated city should never hit the ladder"
    );
    assert!(reports.iter().all(|r| r.cost.is_finite() && r.cost >= 0.0));
    assert!(
        reports.iter().any(|r| r.routed.count() > 0),
        "traffic should move"
    );
}
