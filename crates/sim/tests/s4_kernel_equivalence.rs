//! A/B regression gate for the warm-started S4 energy kernel.
//!
//! The kernel contract: `solve_energy_management_warm_into` (threshold
//! search + guarded bisection replay, warm-started from last slot's
//! equilibrium) must be **bit-identical** to the frozen cold-bisection
//! oracle `solve_energy_management_into` — same decisions, draws, costs,
//! objectives, equilibrium prices, and errors, on every slot of every
//! scenario.
//!
//! Two gates pin that promise:
//!
//! * a golden fingerprint of the full scenario battery (seed scenarios,
//!   both S1 schedulers, all four fault scenarios, both degradation
//!   policies, the one-hop architecture, grid-only, and a `V = 0`
//!   pure-stability run) recorded from the pre-kernel controller;
//! * an in-process lockstep: two simulators per scenario, one flipped to
//!   the `marginal_price_reference` stage (the oracle behind the pipeline
//!   seam), stepped slot by slot with bit-equality asserted on every
//!   [`SlotReport`](greencell_core::SlotReport).
//!
//! To re-bless after an *intentional* behavior change:
//!
//! ```text
//! GREENCELL_BLESS=1 cargo test -p greencell-sim --test s4_kernel_equivalence
//! ```

use greencell_core::{DegradationPolicy, EnergyPolicy, SchedulerKind};
use greencell_sim::faults::FaultSpec;
use greencell_sim::{run_sweep, Architecture, Scenario, Simulator, SweepOptions, SweepPoint};
use std::path::PathBuf;

const GOLDEN: &str = "golden/s4_kernel_ab.fp";

/// The pinned scenario battery: the s1-gate battery (tiny + paper seeds
/// under both schedulers, the four fault scenarios) extended with the
/// policy axes that exercise distinct S4 paths — strict degradation,
/// one-hop relaying, the grid-only stage, and `V = 0` (the S4 bracket
/// degenerates to pure stability pricing).
fn battery() -> Vec<(String, Scenario)> {
    let mut pts = Vec::new();
    for seed in [500u64, 501, 502] {
        pts.push((format!("tiny_greedy_{seed}"), Scenario::tiny(seed)));
        let mut s = Scenario::tiny(seed);
        s.scheduler = SchedulerKind::SequentialFix;
        pts.push((format!("tiny_seqfix_{seed}"), s));
    }
    let mut paper = Scenario::paper(42);
    paper.horizon = 60;
    pts.push(("paper_greedy".into(), paper.clone()));
    let mut paper_sf = paper.clone();
    paper_sf.scheduler = SchedulerKind::SequentialFix;
    paper_sf.horizon = 12;
    pts.push(("paper_seqfix".into(), paper_sf));
    for (label, spec) in [
        ("bs_outage", FaultSpec::bs_outage()),
        ("renewable_drought", FaultSpec::renewable_drought(15, 30)),
        ("price_spike", FaultSpec::price_spike(15, 30, 6.0)),
        ("band_loss", FaultSpec::band_loss()),
    ] {
        let mut s = paper.clone();
        s.faults = Some(spec);
        pts.push((format!("fault_{label}"), s));
    }
    let mut strict = Scenario::tiny(4243);
    strict.horizon = 30;
    strict.v = 1e4;
    strict.faults = Some(FaultSpec::bs_outage());
    strict.degradation = DegradationPolicy::Strict;
    pts.push(("strict_bs_outage".into(), strict));
    let mut one_hop = Scenario::tiny(500);
    one_hop.architecture = Architecture::OneHopRenewable;
    pts.push(("one_hop".into(), one_hop));
    let mut grid_only = Scenario::tiny(500);
    grid_only.energy_policy = EnergyPolicy::GridOnly;
    pts.push(("grid_only".into(), grid_only));
    let mut v_zero = Scenario::paper(42);
    v_zero.horizon = 30;
    v_zero.v = 0.0;
    pts.push(("paper_v_zero".into(), v_zero));
    pts
}

/// Everything decision-derived from one run, rendered exactly.
fn fingerprint() -> String {
    let points: Vec<SweepPoint> = battery()
        .into_iter()
        .map(|(label, scenario)| SweepPoint::new(label, scenario))
        .collect();
    let report = run_sweep(&points, &SweepOptions::with_threads(2)).expect("sweep runs");
    report
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{}|seed={}|degraded={}|events={}|stable={}|{:?}",
                o.label,
                o.seed,
                o.telemetry.degraded_slots,
                o.telemetry.degradation_events,
                o.telemetry.watchdog.stable,
                o.metrics,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(GOLDEN)
}

#[test]
fn kernel_matches_pre_kernel_controller_bit_exactly() {
    let actual = fingerprint();
    let path = golden_path();
    if std::env::var_os("GREENCELL_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); re-bless", path.display()));
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        let label = e.split('|').next().unwrap_or("?");
        assert_eq!(
            a, e,
            "scenario #{i} ({label}): run diverged from the pre-kernel controller"
        );
    }
    assert_eq!(
        actual.lines().count(),
        expected.lines().count(),
        "scenario battery size changed; re-bless deliberately"
    );
}

/// Kernel vs oracle through the live pipeline seam: every slot report,
/// the final metrics, and the watchdog verdict must agree bit for bit.
/// Grid-only scenarios skip the stage swap (both arms already run the
/// same stage) but still ride through the lockstep as a control.
#[test]
fn kernel_matches_oracle_in_lockstep_on_every_scenario() {
    for (label, scenario) in battery() {
        let mut kernel = Simulator::new(&scenario).expect("scenario builds");
        let mut oracle = Simulator::new(&scenario).expect("scenario builds");
        if scenario.energy_policy != EnergyPolicy::GridOnly {
            let stage = greencell_core::pipeline::energy_stage("marginal_price_reference")
                .expect("reference stage is registered");
            oracle.controller_mut().set_energy_stage(stage);
        }
        let mut aborted = false;
        for slot in 0..scenario.horizon {
            let a = kernel.step_with_report();
            let b = oracle.step_with_report();
            assert_eq!(a, b, "{label}: slot {slot} diverged");
            if a.is_err() {
                // Both arms aborted with the identical error (strict
                // policy); neither advanced past this slot.
                aborted = true;
                break;
            }
        }
        if !aborted {
            assert_eq!(
                kernel.metrics(),
                oracle.metrics(),
                "{label}: final metrics diverged"
            );
            assert_eq!(
                kernel.watchdog().report(),
                oracle.watchdog().report(),
                "{label}: watchdog verdicts diverged"
            );
        }
    }
}
