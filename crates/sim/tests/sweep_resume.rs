//! Resumable-sweep equivalence: a checkpointed sweep that is killed
//! partway and restarted must produce final reports **byte-identical**
//! to a never-interrupted sweep — at any interruption point and any
//! worker count — and a corrupt checkpoint must be quarantined and
//! recovered from, never trusted and never fatal.

use greencell_sim::{
    derive_point_seed, run_sweep, run_sweep_checkpointed, run_sweep_checkpointed_stats, Scenario,
    SimError, SweepOptions, SweepPoint,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("greencell-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A small heterogeneous sweep: varying seeds, horizons, and V weights,
/// with per-point seeds derived the same way the structural sweeps do.
fn points() -> Vec<SweepPoint> {
    (0..5)
        .map(|i| {
            let mut s = Scenario::tiny(derive_point_seed(90, i as u64));
            s.horizon = 10 + 2 * (i % 3);
            s.v *= (i + 1) as f64;
            SweepPoint::new(format!("point-{i}"), s)
        })
        .collect()
}

/// Simulates a crash after `completed` points by checkpointing a prefix
/// sweep, then "restarts" over the full list against the same file.
fn interrupt_then_resume(completed: usize, resume_threads: usize) {
    let dir = temp_dir(&format!("k{completed}-t{resume_threads}"));
    let ckpt = dir.join("sweep.ckpt");
    let all = points();

    let reference = run_sweep(&all, &SweepOptions::serial()).expect("reference sweep");

    // The "crashed" invocation: only the first `completed` points ever
    // ran, each landing in the checkpoint as it finished.
    run_sweep_checkpointed(&all[..completed], &SweepOptions::serial(), &ckpt)
        .expect("interrupted sweep");

    let (resumed, stats) =
        run_sweep_checkpointed_stats(&all, &SweepOptions::with_threads(resume_threads), &ckpt)
            .expect("resumed sweep");
    assert_eq!(stats.salvaged, completed, "salvage count");
    assert_eq!(stats.recomputed, all.len() - completed, "recompute count");
    assert!(stats.quarantined.is_none());

    // The deterministic artifact is byte-identical; the full outcome
    // set (metrics included) matches point-for-point.
    assert_eq!(
        resumed.stability_json(),
        reference.stability_json(),
        "stability report diverged (interrupted at {completed}, {resume_threads} threads)"
    );
    for (a, b) in resumed.outcomes.iter().zip(&reference.outcomes) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.metrics, b.metrics, "metrics diverged for {}", a.label);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn resumed_sweep_is_byte_identical_at_every_interruption_point() {
    for completed in 0..points().len() {
        interrupt_then_resume(completed, 1);
    }
}

#[test]
fn resumed_sweep_is_byte_identical_at_any_worker_count() {
    for threads in [2, 4] {
        interrupt_then_resume(2, threads);
    }
}

#[test]
fn corrupt_checkpoint_is_quarantined_and_the_sweep_still_matches() {
    let dir = temp_dir("corrupt");
    let ckpt = dir.join("sweep.ckpt");
    let all = points();
    let reference = run_sweep(&all, &SweepOptions::serial()).expect("reference sweep");

    run_sweep_checkpointed(&all[..3], &SweepOptions::serial(), &ckpt).expect("interrupted sweep");
    // Flip a payload byte: the checksum must catch it.
    let text = std::fs::read_to_string(&ckpt).expect("read checkpoint");
    let payload_start = text.find('\n').expect("two lines") + 1;
    let mut bytes = text.into_bytes();
    bytes[payload_start + 60] ^= 0x01;
    std::fs::write(&ckpt, bytes).expect("corrupt checkpoint");

    let (resumed, stats) =
        run_sweep_checkpointed_stats(&all, &SweepOptions::serial(), &ckpt).expect("resumed sweep");
    assert_eq!(stats.salvaged, 0);
    assert_eq!(stats.recomputed, all.len());
    let quarantine = stats.quarantined.expect("quarantine path");
    assert!(quarantine.ends_with("sweep.ckpt.corrupt"));
    assert!(quarantine.exists());
    assert!(matches!(
        stats.quarantine_error,
        Some(SimError::CorruptSnapshot { .. })
    ));
    assert_eq!(resumed.stability_json(), reference.stability_json());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn finished_checkpoint_resumes_to_identical_reports_without_rerunning() {
    let dir = temp_dir("finished");
    let ckpt = dir.join("sweep.ckpt");
    let all = points();
    let first =
        run_sweep_checkpointed(&all, &SweepOptions::with_threads(3), &ckpt).expect("first sweep");
    let (second, stats) =
        run_sweep_checkpointed_stats(&all, &SweepOptions::serial(), &ckpt).expect("second sweep");
    assert_eq!(stats.recomputed, 0);
    assert_eq!(stats.salvaged, all.len());
    // Everything per-point — metrics *and* wall-clock telemetry — is the
    // persisted original, reproduced exactly. (The report-level wall time
    // and thread count describe *this* invocation and rightly differ.)
    assert_eq!(second.outcomes, first.outcomes);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
