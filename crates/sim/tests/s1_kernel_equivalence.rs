//! A/B regression gate for the incremental S1 power-control kernel.
//!
//! The kernel contract: incremental (warm-started) Foschini–Miljanic
//! solves are used only for feasibility *probing* inside the S1 greedy /
//! sequential-fix loops; the final accepted schedule always gets one
//! cold-start `min_power_assignment`. Schedules, powers, telemetry, and
//! the deterministic trace section must therefore be **bit-identical** to
//! the pre-kernel controller.
//!
//! This test pins that promise against golden fingerprints recorded from
//! the pre-kernel controller (commit `f5da312`) on the seed scenarios and
//! the four `fault_sweep` fault scenarios, for both S1 schedulers. The
//! fingerprint is the `Debug` rendering of every run's full metric series
//! (per-slot cost, grid draw, backlogs, admissions, routing, scheduling,
//! Lyapunov values — everything decision-derived), which round-trips
//! `f64` bit patterns exactly.
//!
//! To re-bless after an *intentional* behavior change:
//!
//! ```text
//! GREENCELL_BLESS=1 cargo test -p greencell-sim --test s1_kernel_equivalence
//! ```

use greencell_core::SchedulerKind;
use greencell_sim::faults::FaultSpec;
use greencell_sim::{run_sweep, Scenario, SweepOptions, SweepPoint};
use std::path::PathBuf;

const GOLDEN: &str = "golden/s1_kernel_ab.fp";

/// The pinned scenario battery: tiny + paper seeds under both schedulers,
/// plus the four fault scenarios of `fault_sweep` (horizons trimmed so the
/// whole gate stays fast; the trimmed prefix of a longer run is the same
/// sample path, so nothing is lost by pinning the prefix).
fn points() -> Vec<SweepPoint> {
    let mut pts = Vec::new();
    for seed in [500u64, 501, 502] {
        pts.push(SweepPoint::new(
            format!("tiny_greedy_{seed}"),
            Scenario::tiny(seed),
        ));
        let mut s = Scenario::tiny(seed);
        s.scheduler = SchedulerKind::SequentialFix;
        pts.push(SweepPoint::new(format!("tiny_seqfix_{seed}"), s));
    }
    let mut paper = Scenario::paper(42);
    paper.horizon = 60;
    pts.push(SweepPoint::new("paper_greedy", paper.clone()));
    let mut paper_sf = paper.clone();
    paper_sf.scheduler = SchedulerKind::SequentialFix;
    paper_sf.horizon = 12;
    pts.push(SweepPoint::new("paper_seqfix", paper_sf));
    for (label, spec) in [
        ("bs_outage", FaultSpec::bs_outage()),
        ("renewable_drought", FaultSpec::renewable_drought(15, 30)),
        ("price_spike", FaultSpec::price_spike(15, 30, 6.0)),
        ("band_loss", FaultSpec::band_loss()),
    ] {
        let mut s = paper.clone();
        s.faults = Some(spec);
        pts.push(SweepPoint::new(format!("fault_{label}"), s));
    }
    pts
}

/// Everything decision-derived from one run, rendered exactly.
fn fingerprint() -> String {
    let report = run_sweep(&points(), &SweepOptions::with_threads(2)).expect("sweep runs");
    report
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{}|seed={}|degraded={}|events={}|stable={}|{:?}",
                o.label,
                o.seed,
                o.telemetry.degraded_slots,
                o.telemetry.degradation_events,
                o.telemetry.watchdog.stable,
                o.metrics,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(GOLDEN)
}

#[test]
fn kernel_matches_pre_kernel_controller_bit_exactly() {
    let actual = fingerprint();
    let path = golden_path();
    if std::env::var_os("GREENCELL_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); re-bless", path.display()));
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        let label = e.split('|').next().unwrap_or("?");
        assert_eq!(
            a, e,
            "scenario #{i} ({label}): run diverged from the pre-kernel controller"
        );
    }
    assert_eq!(
        actual.lines().count(),
        expected.lines().count(),
        "scenario battery size changed; re-bless deliberately"
    );
}
