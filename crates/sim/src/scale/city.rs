//! The city-scale scenario generator: Poisson-disk base stations,
//! hotspot users, diurnal traffic, and lossless interference pruning.

use greencell_net::{GridIndex, Point};
use greencell_stochastic::Rng;

use crate::scenario::{DiurnalProfile, Placement, Scenario};
use crate::sweep::derive_point_seed;

/// The city calibration's noise density (W/Hz). The paper's `10⁻²⁰` makes
/// the pruning radius planet-sized (every watt reaches everyone); `3×10⁻¹⁷`
/// is the same "make path loss move watts" recalibration as
/// [`Scenario::fig2f_calibrated`] and yields a ~2.5 km cutoff.
pub const CITY_NOISE_DENSITY: f64 = 3e-17;

/// Base stations are at least this many cutoff radii apart, so per-BS
/// hotspot clusters (σ = [`CITY_HOTSPOT_SIGMA_FACTOR`]·d_cut, radius
/// clamped to 2σ) cannot bridge neighboring cells: the closest two users
/// of different cells can get is `(1.7 − 4·0.15)·d_cut = 1.1·d_cut`,
/// which is beyond the cutoff.
pub const CITY_BS_SPACING_FACTOR: f64 = 1.7;

/// Hotspot standard deviation as a fraction of the cutoff radius.
pub const CITY_HOTSPOT_SIGMA_FACTOR: f64 = 0.15;

/// Stream salt for the BS-placement RNG (distinct from the sweep's
/// point-seed space by convention: sweeps use small point indices).
const CITY_PLACEMENT_SALT: u64 = 0x6369_7479_5f62_7300; // "city_bs\0"

impl Scenario {
    /// A deterministic city-scale scenario: `n_bs` Poisson-disk base
    /// stations in an `area_m × area_m` square, `n_users` users clustered
    /// in Gaussian hotspots around them, one session per ~50 users (at
    /// least 2), a 24-slot diurnal traffic profile phase-shifted per cell,
    /// and the lossless interference pruning floor pre-applied
    /// ([`Scenario::interference_gain_floor`]).
    ///
    /// Everything else — powers, batteries, bands, cost — is the paper's
    /// §VI configuration, except the noise density, which uses the
    /// `CITY_NOISE_DENSITY` calibration so pruning has a finite radius.
    /// All randomness derives from `seed`: base-station positions come
    /// from a dedicated salted stream, user positions and sessions from
    /// the scenario's usual topology stream.
    ///
    /// Use [`Scenario::default_city_area`] for an area sized to keep the
    /// BS density at the spacing the hotspot-separation argument assumes.
    ///
    /// # Panics
    ///
    /// Panics if `area_m` is not positive and finite.
    #[must_use]
    pub fn city(n_users: usize, n_bs: usize, area_m: f64, seed: u64) -> Self {
        assert!(
            area_m > 0.0 && area_m.is_finite(),
            "city area must be positive and finite, got {area_m}"
        );
        let mut s = Self::paper(seed);
        s.noise_density = CITY_NOISE_DENSITY;
        s.users = n_users;
        s.area_m = area_m;
        s.horizon = 50;
        s.sessions = (n_users / 50).max(2);
        s.gain_floor = s.interference_gain_floor();
        let d_cut = s
            .cutoff_radius_m()
            .expect("positive noise density implies a positive pruning floor");
        s.placement = Placement::Hotspots {
            sigma_m: CITY_HOTSPOT_SIGMA_FACTOR * d_cut,
            fraction: 1.0,
        };
        s.diurnal = Some(DiurnalProfile {
            period_slots: 24,
            min_fraction: 0.25,
        });
        s.bs_positions = poisson_disk_positions(
            n_bs,
            area_m,
            CITY_BS_SPACING_FACTOR * d_cut,
            derive_point_seed(seed, CITY_PLACEMENT_SALT),
        );
        s
    }

    /// The deployment-area side (meters) that gives `n_bs` base stations
    /// twice the square footprint their minimum Poisson-disk spacing
    /// needs: `side = √(2·n_bs) · 1.7·d_cut`, with `d_cut` the city
    /// calibration's ~2.5 km cutoff radius. Dart throwing converges fast
    /// at this density and cells stay interference-separated.
    #[must_use]
    pub fn default_city_area(n_bs: usize) -> f64 {
        let mut probe = Self::paper(0);
        probe.noise_density = CITY_NOISE_DENSITY;
        probe.gain_floor = probe.interference_gain_floor();
        let d_cut = probe
            .cutoff_radius_m()
            .expect("positive noise density implies a positive pruning floor");
        ((2 * n_bs.max(1)) as f64).sqrt() * CITY_BS_SPACING_FACTOR * d_cut
    }
}

/// Deterministic Poisson-disk dart throwing: draws uniform candidates and
/// accepts those at least `min_spacing_m` from every accepted point, using
/// a [`GridIndex`] for `O(1)` expected rejection tests. If a spacing level
/// stalls (64 consecutive misses per remaining point), the spacing shrinks
/// by 20% and throwing resumes — so the function always returns exactly
/// `n` points, trading spacing for completion in degenerate areas.
fn poisson_disk_positions(n: usize, area_m: f64, min_spacing_m: f64, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = Rng::seed_from(seed);
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(n);
    let mut spacing = min_spacing_m;
    while out.len() < n && spacing > min_spacing_m * 1e-3 {
        let mut index = GridIndex::new(spacing, area_m, area_m);
        for &(x, y) in &out {
            index.insert(Point::new(x, y));
        }
        let budget = 64 * (n - out.len());
        let mut misses = 0usize;
        while out.len() < n && misses < budget {
            let x = rng.range_f64(0.0, area_m);
            let y = rng.range_f64(0.0, area_m);
            if index.has_neighbor_within(Point::new(x, y), spacing) {
                misses += 1;
                continue;
            }
            index.insert(Point::new(x, y));
            out.push((x, y));
        }
        spacing *= 0.8;
    }
    // Degenerate area: accept unconditionally rather than loop forever.
    while out.len() < n {
        out.push((rng.range_f64(0.0, area_m), rng.range_f64(0.0, area_m)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_disk_respects_the_minimum_spacing() {
        let pts = poisson_disk_positions(20, 20_000.0, 4000.0, 7);
        assert_eq!(pts.len(), 20);
        for (a, &(xa, ya)) in pts.iter().enumerate() {
            for &(xb, yb) in &pts[a + 1..] {
                let d = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
                assert!(d >= 4000.0 * 0.8 * 1e-3, "degenerate collapse: {d}");
            }
        }
    }

    #[test]
    fn poisson_disk_is_deterministic_in_the_seed() {
        let a = poisson_disk_positions(50, 50_000.0, 4000.0, 99);
        let b = poisson_disk_positions(50, 50_000.0, 4000.0, 99);
        assert_eq!(a, b);
        let c = poisson_disk_positions(50, 50_000.0, 4000.0, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn city_scenario_is_calibrated_for_pruning() {
        let s = Scenario::city(200, 4, Scenario::default_city_area(4), 11);
        assert_eq!(s.users, 200);
        assert_eq!(s.bs_positions.len(), 4);
        assert_eq!(s.sessions, 4);
        assert!(s.gain_floor > 0.0);
        let d_cut = s.cutoff_radius_m().expect("pruning enabled");
        // The calibration's cutoff is a couple of kilometers.
        assert!((1000.0..5000.0).contains(&d_cut), "d_cut = {d_cut}");
        // BSs respect the spacing that keeps hotspot cells separated.
        for (a, &(xa, ya)) in s.bs_positions.iter().enumerate() {
            for &(xb, yb) in &s.bs_positions[a + 1..] {
                let d = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
                assert!(d >= CITY_BS_SPACING_FACTOR * d_cut * 0.999, "spacing {d}");
            }
        }
        assert!(s.diurnal.is_some());
        // Deterministic in the seed.
        assert_eq!(
            s,
            Scenario::city(200, 4, Scenario::default_city_area(4), 11)
        );
    }
}
