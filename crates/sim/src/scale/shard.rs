//! The cluster-parallel slot solver and its observation driver.
//!
//! [`ShardedController`] replays the dense
//! [`Controller`](greencell_core::Controller) step exactly, but runs the
//! separable stages (S1 scheduling, S2 admission, S3 routing) per
//! interference cluster — optionally on several worker threads — while S4
//! energy management stays global (the provider's cost `f(P)` couples all
//! base stations). With pruning disabled there is one cluster and every
//! [`SlotReport`] is bit-identical to the dense pipeline's; the
//! `city_equivalence` integration test pins that.
//!
//! Worker count never changes results: clusters are solved from their own
//! state only and are assigned to threads in contiguous deterministic
//! chunks, so the per-cluster outputs — and every global reduction, which
//! always runs in cluster-id order on one thread — are identical at any
//! parallelism.

use greencell_core::pipeline::{self, EnergyStage, RelayStage, ScheduleStage};
use greencell_core::{
    dpp, resource_allocation_into, resource_allocation_masked_into, route_flows_into,
    solve_grid_only_into, solve_safe_mode, Admission, ControllerConfig, DegradationEvent,
    DegradationPolicy, EnergyManagementError, EnergyManagementInput, EnergyOutcome, NetworkState,
    S1Inputs, S1Scratch, S3Scratch, S4Workspace, ScheduleOutcome, SlotObservation, SlotReport,
};
use greencell_energy::{Battery, CostFn, NodeEnergyModel, QuadraticCost};
use greencell_net::{Network, NetworkBuilder, NodeId, NodeKind, PathLossModel, SessionId};
use greencell_phy::{packets_per_slot, potential_capacity, PhyConfig, SpectrumState};
use greencell_queue::{lyapunov_value, DataQueueBank, FlowPlan, LinkQueueBank};
use greencell_stochastic::{Distribution, Poisson, Rng};
use greencell_units::{Bandwidth, Energy, Packets, Power};

use super::ClusterSet;
use crate::engine::SimError;
use crate::scenario::{DemandModel, GridModel, Scenario, ScenarioLayout};

/// One interference cluster's dense subproblem: its sub-network, queue
/// banks, and the warm per-slot scratch the stages reuse. Local node ids
/// are positions in the ascending global member list (base stations keep
/// their lead because global ids put BSs first); local session ids follow
/// global session order.
#[derive(Debug)]
struct ClusterSolver {
    net: Network,
    /// Global node ids, ascending.
    nodes: Vec<usize>,
    /// Global session ids, ascending.
    sessions: Vec<usize>,
    data: DataQueueBank,
    links: LinkQueueBank,
    max_powers: Vec<Power>,
    models: Vec<NodeEnergyModel>,
    // Per-slot scratch, allocated once and reused (zero-alloc steady state).
    traffic_budget: Vec<Energy>,
    session_demand: Vec<Packets>,
    z: Vec<f64>,
    s1: S1Scratch,
    outcome: ScheduleOutcome,
    s3: S3Scratch,
    flows: FlowPlan,
    admissions: Vec<Admission>,
    link_service: Vec<(NodeId, NodeId, Packets)>,
    routing_caps: Vec<(NodeId, NodeId, Packets)>,
    admission_triples: Vec<(SessionId, NodeId, Packets)>,
    /// Local active mask scattered from the controller's global
    /// [`NetworkState`] each slot (empty = every node active, the
    /// static-topology fast path — bit-identical to the pre-sleep solver).
    avail: Vec<bool>,
    /// Inert state satisfying the stage signature; the live sleep/coop
    /// machine is the controller's global one.
    net_state: NetworkState,
}

impl ClusterSolver {
    /// Runs S1, S2, routing-cap assembly, link service, and S3 for one
    /// slot — everything the dense step does before its S4 loop, minus
    /// fault availability (the sharded path rejects faults). Routing caps
    /// cover within-cluster pairs only; a cross-cluster gain is exactly
    /// zero, so such a link can never be scheduled and routing onto it
    /// would queue packets forever.
    fn solve_slot(
        &mut self,
        phy: &PhyConfig,
        spectrum: &SpectrumState,
        config: &ControllerConfig,
        schedule_stage: &'static dyn ScheduleStage,
        relay_stage: &'static dyn RelayStage,
        beta_cap: Packets,
    ) {
        let s1_inputs = S1Inputs {
            net: &self.net,
            phy,
            spectrum,
            links: &self.links,
            max_powers: &self.max_powers,
            energy_models: &self.models,
            traffic_budget: &self.traffic_budget,
            available: &self.avail,
            slot: config.slot,
            packet_size: config.packet_size,
        };
        schedule_stage.schedule(
            &s1_inputs,
            &mut self.net_state,
            &mut self.s1,
            &mut self.outcome,
        );
        if self.avail.is_empty() {
            resource_allocation_into(
                &self.net,
                &self.data,
                config.lambda,
                config.v,
                config.k_max,
                &mut self.admissions,
            );
        } else {
            // The sharded path rejects faults, so the scattered mask is
            // exactly "awake and done ramping": sessions re-associate to a
            // serving BS instead of queueing behind a sleeping one, same
            // as the dense controller.
            let avail = &self.avail;
            resource_allocation_masked_into(
                &self.net,
                &self.data,
                config.lambda,
                config.v,
                config.k_max,
                &|b: NodeId| avail.get(b.index()).copied().unwrap_or(true),
                &mut self.admissions,
            );
            self.admissions.retain(|a| avail[a.source.index()]);
        }
        let net = &self.net;
        let avail = &self.avail;
        self.routing_caps.clear();
        self.routing_caps.extend(
            net.topology()
                .ordered_pairs()
                .filter(|&(i, j)| !net.link_bands(i, j).is_empty())
                .filter(|&(i, j)| {
                    avail.get(i.index()).copied().unwrap_or(true)
                        && avail.get(j.index()).copied().unwrap_or(true)
                })
                .filter(|&(i, _)| relay_stage.may_relay(net, i))
                .map(|(i, j)| (i, j, beta_cap)),
        );
        self.refresh_link_service(spectrum, phy, config);
        route_flows_into(
            &self.net,
            &self.data,
            &self.links,
            &self.routing_caps,
            &self.admissions,
            &self.session_demand,
            &mut self.s3,
            &mut self.flows,
        );
    }

    /// Recomputes the link-service list from the (possibly shed) schedule
    /// — the only S3 input that changes on a degradation retry. The flow
    /// plan does not read the schedule, so it needs no recompute.
    fn refresh_link_service(
        &mut self,
        spectrum: &SpectrumState,
        phy: &PhyConfig,
        config: &ControllerConfig,
    ) {
        self.link_service.clear();
        self.link_service
            .extend(self.outcome.schedule.transmissions().iter().map(|t| {
                let capacity = potential_capacity(spectrum.bandwidth(t.band()), phy);
                (
                    t.tx(),
                    t.rx(),
                    packets_per_slot(capacity, config.packet_size, config.slot),
                )
            }));
    }
}

/// A cluster-parallel drop-in for the dense controller on city-scale
/// scenarios: S1–S3 per interference cluster, S4 global, same degradation
/// ladder, bit-identical reports when pruning is off (one cluster).
///
/// Construct from a [`Scenario`]; step with the same [`SlotObservation`]s
/// the dense pipeline takes (or drive it with [`CitySim`]).
#[derive(Debug)]
pub struct ShardedController {
    phy: PhyConfig,
    config: ControllerConfig,
    cost: QuadraticCost,
    beta: f64,
    gamma_max: f64,
    total_nodes: usize,
    total_sessions: usize,
    band_count: usize,
    workers: usize,
    schedule_stage: &'static dyn ScheduleStage,
    relay_stage: &'static dyn RelayStage,
    energy_stage: &'static dyn EnergyStage,
    // Global per-node energy state, in global node-id order.
    batteries: Vec<Battery>,
    models: Vec<NodeEnergyModel>,
    grid_limits: Vec<Energy>,
    is_bs: Vec<bool>,
    // Decomposition.
    decomposition: ClusterSet,
    clusters: Vec<ClusterSolver>,
    /// Cluster id → index into `clusters` (None for BS-less clusters,
    /// whose nodes idle: no scheduling, no sessions, idle demand only).
    solver_of_cluster: Vec<Option<usize>>,
    node_cluster: Vec<usize>,
    node_local: Vec<usize>,
    /// Global ids of nodes in BS-less clusters.
    uncovered: Vec<usize>,
    // Dynamic network state (BS sleeping + energy cooperation). Inert
    // when both policies are off; everything here runs pre-scatter on one
    // thread, so worker count still never changes results.
    net_state: NetworkState,
    /// The scenario and layout, kept for awake-set re-decomposition.
    scenario: Scenario,
    layout: ScenarioLayout,
    /// The decomposition over the currently-awake node set (recomputed on
    /// every awake-set change; equals `decomposition` while all BSs are
    /// up). Solvers stay bound to the static decomposition — masking
    /// inside a static cluster is exactly equivalent because cross-cluster
    /// gains are zero, so a user's best awake BS is always in its own
    /// static cluster.
    effective: ClusterSet,
    redecompositions: u64,
    masked: Vec<bool>,
    // Global per-slot arena (reused; zero-alloc steady state).
    z: Vec<f64>,
    z_after: Vec<f64>,
    demand: Vec<Energy>,
    traffic_budget: Vec<Energy>,
    s4: S4Workspace,
    energy: EnergyOutcome,
    slot: u64,
}

impl ShardedController {
    /// Single-threaded construction; see [`ShardedController::with_workers`].
    ///
    /// # Errors
    ///
    /// See [`ShardedController::with_workers`].
    pub fn new(scenario: &Scenario) -> Result<Self, SimError> {
        Self::with_workers(scenario, 1)
    }

    /// Builds the decomposition and all per-cluster state for `scenario`,
    /// solving clusters on up to `workers` threads per slot. Worker count
    /// does not affect results, only wall-clock.
    ///
    /// # Errors
    ///
    /// [`SimError::UnsupportedAtScale`] if the scenario uses shadowing or
    /// fault injection, or if a session destination lands in a cluster
    /// with no base station (no admission source could ever reach it);
    /// [`SimError::Network`] if a cluster sub-network fails validation.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's controller configuration is numerically
    /// invalid (same contract as the dense controller).
    pub fn with_workers(scenario: &Scenario, workers: usize) -> Result<Self, SimError> {
        if scenario.shadowing_sigma_db > 0.0 {
            return Err(SimError::UnsupportedAtScale {
                detail: "log-normal shadowing breaks the geometric interference-closure \
                         guarantee of cluster decomposition"
                    .into(),
            });
        }
        if scenario.faults.is_some() {
            return Err(SimError::UnsupportedAtScale {
                detail: "fault injection is only wired into the dense Simulator".into(),
            });
        }
        let phy = scenario.phy();
        let config = scenario.controller_config();
        config.validate();
        let cost = QuadraticCost::new(scenario.cost.0, scenario.cost.1, scenario.cost.2);
        let beta = dpp::beta(&config, &phy);
        // The sharded driver runs the sleep machine itself (pre-scatter)
        // and masks cluster solves, so it always resolves the *inner*
        // scheduler — never the dense driver's `bs_sleep` wrapper stage.
        let schedule_stage = pipeline::schedule_stage(config.scheduler.key())
            .expect("built-in schedule stage is registered");
        let relay_stage =
            pipeline::relay_stage(config.relay.key()).expect("built-in relay stage is registered");
        let energy_key = if config.energy_coop.is_some() {
            "energy_coop"
        } else {
            config.energy_policy.key()
        };
        let energy_stage =
            pipeline::energy_stage(energy_key).expect("built-in energy stage is registered");

        let layout = scenario.build_layout();
        let n = layout.len();
        let mut batteries = Vec::with_capacity(n);
        let mut models = Vec::with_capacity(n);
        let mut max_powers = Vec::with_capacity(n);
        let mut grid_limits = Vec::with_capacity(n);
        let mut is_bs = Vec::with_capacity(n);
        for kind in &layout.kinds {
            let nc = scenario.node_energy_config(kind.is_base_station());
            batteries.push(nc.battery);
            models.push(nc.energy_model);
            max_powers.push(nc.max_power);
            grid_limits.push(nc.grid_limit);
            is_bs.push(kind.is_base_station());
        }
        // γ_max over the whole network's BS grid capacity, in global node
        // order — exactly `dpp::gamma_max` on the dense network.
        let max_grid_draw: Energy = (0..n).filter(|&i| is_bs[i]).map(|i| grid_limits[i]).sum();
        let gamma_max = cost.max_marginal(max_grid_draw);

        let decomposition = ClusterSet::decompose(&layout, scenario);
        let node_cluster = decomposition.membership().to_vec();
        let mut node_local = vec![0usize; n];
        for members in decomposition.clusters() {
            for (local, &g) in members.iter().enumerate() {
                node_local[g] = local;
            }
        }
        for &(dest, _) in &layout.sessions {
            let members = &decomposition.clusters()[node_cluster[dest]];
            if !is_bs[members[0]] {
                return Err(SimError::UnsupportedAtScale {
                    detail: format!(
                        "session destination node {dest} lies in a base-station-free \
                         interference cluster; no admission source could reach it"
                    ),
                });
            }
        }

        let mut clusters = Vec::new();
        let mut solver_of_cluster = Vec::with_capacity(decomposition.len());
        let mut uncovered = Vec::new();
        for (cid, members) in decomposition.clusters().iter().enumerate() {
            // Global ids put BSs first, members are ascending: a cluster
            // has a BS iff its first member is one.
            if !is_bs[members[0]] {
                solver_of_cluster.push(None);
                uncovered.extend(members.iter().copied());
                continue;
            }
            let mut b = NetworkBuilder::new(
                PathLossModel::new(scenario.path_loss_c, scenario.path_loss_gamma),
                scenario.band_count(),
            );
            for &g in members {
                match layout.kinds[g] {
                    NodeKind::BaseStation => b.add_base_station(layout.positions[g]),
                    NodeKind::User => b.add_user(layout.positions[g]),
                };
            }
            for (local, &g) in members.iter().enumerate() {
                b.set_bands(NodeId::from_index(local), layout.bands[g]);
            }
            let mut cluster_sessions = Vec::new();
            let mut destinations = Vec::new();
            for (sid, &(dest, demand)) in layout.sessions.iter().enumerate() {
                if node_cluster[dest] == cid {
                    let local = NodeId::from_index(node_local[dest]);
                    b.add_session(local, demand);
                    cluster_sessions.push(sid);
                    destinations.push(local);
                }
            }
            if scenario.gain_floor > 0.0 {
                b.set_gain_floor(scenario.gain_floor);
            }
            let net = b.build().map_err(SimError::Network)?;
            let local_n = members.len();
            let local_s = cluster_sessions.len();
            // Structural per-slot maxima, so the warm scratch never grows
            // after construction: candidate (i, j, m) triples are bounded
            // by the shared-band count over ordered pairs, routable links
            // by the pairs with any shared band, schedules by the
            // single-radio limit ⌊n/2⌋.
            let link_slots = net
                .topology()
                .ordered_pairs()
                .filter(|&(i, j)| !net.link_bands(i, j).is_empty())
                .count();
            let candidate_bound: usize = net
                .topology()
                .ordered_pairs()
                .map(|(i, j)| net.link_bands(i, j).len())
                .sum();
            let schedule_bound = local_n / 2 + 1;
            let mut s1 = S1Scratch::default();
            s1.reserve(local_n, scenario.band_count(), candidate_bound);
            let mut outcome = ScheduleOutcome::empty();
            outcome.reserve(schedule_bound);
            let mut s3 = S3Scratch::default();
            s3.reserve(local_n, local_s, link_slots);
            solver_of_cluster.push(Some(clusters.len()));
            clusters.push(ClusterSolver {
                net,
                nodes: members.clone(),
                sessions: cluster_sessions,
                data: DataQueueBank::new(local_n, &destinations),
                links: LinkQueueBank::new(local_n, beta),
                max_powers: members.iter().map(|&g| max_powers[g]).collect(),
                models: members.iter().map(|&g| models[g]).collect(),
                traffic_budget: Vec::with_capacity(local_n),
                session_demand: Vec::with_capacity(local_s),
                z: Vec::with_capacity(local_n),
                s1,
                outcome,
                s3,
                flows: FlowPlan::new(local_n, local_s),
                admissions: Vec::with_capacity(local_s),
                link_service: Vec::with_capacity(schedule_bound),
                routing_caps: Vec::with_capacity(link_slots),
                admission_triples: Vec::with_capacity(local_s),
                avail: Vec::with_capacity(local_n),
                net_state: NetworkState::default(),
            });
        }

        let net_state = NetworkState::new(
            &is_bs,
            config.bs_sleep,
            config.energy_coop,
            config.scheduler,
        );
        let effective = decomposition.clone();
        Ok(Self {
            phy,
            config,
            cost,
            beta,
            gamma_max,
            total_nodes: n,
            total_sessions: layout.sessions.len(),
            band_count: scenario.band_count(),
            workers: workers.max(1),
            schedule_stage,
            relay_stage,
            energy_stage,
            batteries,
            models,
            grid_limits,
            is_bs,
            decomposition,
            clusters,
            solver_of_cluster,
            node_cluster,
            node_local,
            uncovered,
            net_state,
            scenario: scenario.clone(),
            layout,
            effective,
            redecompositions: 0,
            masked: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            z_after: Vec::with_capacity(n),
            demand: Vec::with_capacity(n),
            traffic_budget: Vec::with_capacity(n),
            s4: S4Workspace::default(),
            energy: EnergyOutcome::empty(),
            slot: 0,
        })
    }

    /// Runs one slot: scatter the observation, solve every cluster's
    /// S1–S3 (in parallel when configured), solve global S4 with the
    /// degradation ladder, advance all queues and batteries, and
    /// aggregate the [`SlotReport`].
    ///
    /// # Errors
    ///
    /// [`SimError::UnsupportedAtScale`] if the observation carries
    /// per-node availability (fault injection);
    /// [`SimError::Controller`] under the strict degradation policy when
    /// S4 stays infeasible after shedding.
    ///
    /// # Panics
    ///
    /// Panics if `obs` has the wrong dimensions for this scenario.
    pub fn step(&mut self, obs: &SlotObservation) -> Result<SlotReport, SimError> {
        let mut clusters = std::mem::take(&mut self.clusters);
        let result = self.step_inner(obs, &mut clusters);
        self.clusters = clusters;
        result
    }

    fn step_inner(
        &mut self,
        obs: &SlotObservation,
        clusters: &mut [ClusterSolver],
    ) -> Result<SlotReport, SimError> {
        obs.validate(self.total_nodes, self.total_sessions, self.band_count);
        if !obs.node_available.is_empty() {
            return Err(SimError::UnsupportedAtScale {
                detail: "per-node availability (fault injection) is only wired into the \
                         dense pipeline"
                    .into(),
            });
        }
        let n = self.total_nodes;

        // Dynamic network state: run the global sleep machine before any
        // cluster solve, single-threaded, so results stay worker-count
        // invariant. Inert (and allocation-free) when both policies are
        // disabled.
        if self.net_state.dynamic() {
            self.net_state.begin_slot(&[]);
            for c in clusters.iter() {
                for (local, &g) in c.nodes.iter().enumerate() {
                    self.net_state.set_node_backlog(
                        g,
                        c.data.node_backlog(NodeId::from_index(local)).count_f64(),
                    );
                }
            }
            if self.net_state.sleep_policy().is_some() {
                let node_cluster = &self.node_cluster;
                let node_local = &self.node_local;
                let solver_of_cluster = &self.solver_of_cluster;
                let immutable_clusters: &[ClusterSolver] = clusters;
                // Cluster-local gain lookup; cross-cluster pairs are
                // exactly zero by the decomposition's closure guarantee.
                let gain = move |u: usize, b: usize| -> f64 {
                    if node_cluster[u] != node_cluster[b] {
                        return 0.0;
                    }
                    match solver_of_cluster[node_cluster[u]] {
                        Some(si) => immutable_clusters[si].net.topology().gain(
                            NodeId::from_index(node_local[u]),
                            NodeId::from_index(node_local[b]),
                        ),
                        None => 0.0,
                    }
                };
                if self.net_state.step_sleep(&gain) {
                    let is_bs = &self.is_bs;
                    let awake = self.net_state.awake();
                    self.masked.clear();
                    self.masked.extend((0..n).map(|i| is_bs[i] && !awake[i]));
                    self.effective =
                        ClusterSet::decompose_masked(&self.layout, &self.scenario, &self.masked);
                    self.redecompositions += 1;
                }
            }
            // Scatter the active mask into each cluster solver.
            let active = self.net_state.active();
            for c in clusters.iter_mut() {
                c.avail.clear();
                c.avail.extend(c.nodes.iter().map(|&g| active[g]));
            }
        }

        // Shifted battery levels and energy admission budgets, globally in
        // node order — the exact dense expressions.
        self.z.clear();
        self.z.extend((0..n).map(|i| {
            dpp::shifted_level(
                self.batteries[i].level(),
                self.config.v,
                self.gamma_max,
                self.batteries[i].discharge_limit(),
            )
        }));
        self.traffic_budget.clear();
        self.traffic_budget.extend((0..n).map(|i| {
            let fixed = self.models[i].const_energy() + self.models[i].idle_energy();
            let grid = if obs.grid_connected[i] {
                self.grid_limits[i]
            } else {
                Energy::ZERO
            };
            (obs.renewable[i] + self.batteries[i].max_discharge_now() + grid - fixed)
                .max(Energy::ZERO)
        }));

        // Scatter to clusters.
        for c in clusters.iter_mut() {
            c.traffic_budget.clear();
            c.traffic_budget
                .extend(c.nodes.iter().map(|&g| self.traffic_budget[g]));
            c.session_demand.clear();
            c.session_demand
                .extend(c.sessions.iter().map(|&s| obs.session_demand[s]));
            c.z.clear();
            c.z.extend(c.nodes.iter().map(|&g| self.z[g]));
        }

        // Cluster-parallel S1–S3.
        let beta_cap = Packets::new(self.beta.floor() as u64);
        {
            let phy = &self.phy;
            let config = &self.config;
            let spectrum = &obs.spectrum;
            let schedule_stage = self.schedule_stage;
            let relay_stage = self.relay_stage;
            let workers = self.workers.min(clusters.len().max(1));
            if workers <= 1 {
                for c in clusters.iter_mut() {
                    c.solve_slot(phy, spectrum, config, schedule_stage, relay_stage, beta_cap);
                }
            } else {
                let chunk = clusters.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    for part in clusters.chunks_mut(chunk) {
                        scope.spawn(move || {
                            for c in part {
                                c.solve_slot(
                                    phy,
                                    spectrum,
                                    config,
                                    schedule_stage,
                                    relay_stage,
                                    beta_cap,
                                );
                            }
                        });
                    }
                });
            }
        }

        // Global S4 with the degradation ladder (dense rung semantics,
        // cluster-aware mechanics).
        let mut shed = 0usize;
        let mut degradation: Vec<DegradationEvent> = Vec::new();
        let scaled_cost = dpp::scaled_cost(&self.cost, obs.price_multiplier);
        loop {
            // Per-node demand from the cluster schedules; BS-less-cluster
            // nodes idle.
            self.demand.clear();
            self.demand.resize(n, Energy::ZERO);
            for c in clusters.iter() {
                for (local, &g) in c.nodes.iter().enumerate() {
                    let node = NodeId::from_index(local);
                    let tx_power = c.outcome.schedule.transmission_from(node).and_then(|t| {
                        c.outcome
                            .schedule
                            .transmissions()
                            .iter()
                            .position(|u| u == t)
                            .map(|k| c.outcome.powers[k])
                    });
                    let receiving = c.outcome.schedule.transmission_to(node).is_some();
                    self.demand[g] =
                        self.models[g].slot_demand(tx_power, receiving, self.config.slot);
                }
            }
            for &g in &self.uncovered {
                self.demand[g] = self.models[g].slot_demand(None, false, self.config.slot);
            }
            // Sleeping and ramping BSs replace their overhead demand with
            // the policy's sleep/ramp power — same override as the dense
            // driver, re-applied on every ladder retry.
            if let Some(sp) = self.config.bs_sleep {
                for g in 0..n {
                    if !self.is_bs[g] {
                        continue;
                    }
                    if self.net_state.is_asleep(g) {
                        self.demand[g] = sp.sleep_power * self.config.slot;
                    } else if self.net_state.ramp_remaining(g) > 0 {
                        self.demand[g] = sp.ramp_power * self.config.slot;
                    }
                }
            }
            let input = EnergyManagementInput {
                z: &self.z,
                demand: &self.demand,
                renewable: &obs.renewable,
                batteries: &self.batteries,
                grid_connected: &obs.grid_connected,
                grid_limits: &self.grid_limits,
                is_base_station: &self.is_bs,
                cost: &scaled_cost,
                v: self.config.v,
            };
            let err = match self.energy_stage.solve(
                &input,
                &mut self.net_state,
                &mut self.s4,
                &mut self.energy,
            ) {
                Ok(()) => break,
                Err(e) => e,
            };

            // Rung 1 — shed the starving node's transmissions and retry.
            let total_scheduled: usize = clusters.iter().map(|c| c.outcome.schedule.len()).sum();
            let mut handled = false;
            if total_scheduled > 0 {
                let gnode = match err {
                    EnergyManagementError::Deficit { node, .. } => node.min(n - 1),
                    _ => clusters
                        .iter()
                        .find(|c| !c.outcome.schedule.is_empty())
                        .map(|c| c.nodes[c.outcome.schedule.transmissions()[0].tx().index()])
                        .expect("non-empty global schedule has a first transmission"),
                };
                if let Some(si) = self.solver_of_cluster[self.node_cluster[gnode]] {
                    let c = &mut clusters[si];
                    let local = NodeId::from_index(self.node_local[gnode]);
                    let before = c.outcome.schedule.len();
                    let reduced = pipeline::shed_node(
                        &c.net,
                        &c.outcome,
                        local,
                        &obs.spectrum,
                        &self.phy,
                        &c.max_powers,
                    );
                    let dropped = before - reduced.schedule.len();
                    if dropped > 0 {
                        c.outcome = reduced;
                        shed += dropped;
                        degradation.push(DegradationEvent::Shed {
                            node: gnode,
                            dropped,
                        });
                        c.refresh_link_service(&obs.spectrum, &self.phy, &self.config);
                        handled = true;
                    }
                }
            }
            if handled {
                continue;
            }
            if matches!(self.config.degradation, DegradationPolicy::Strict) {
                return Err(SimError::Controller(err.into()));
            }
            // Rung 2 — storage-oblivious grid-only sourcing.
            if solve_grid_only_into(&input, &mut self.energy).is_ok() {
                degradation.push(DegradationEvent::GridOnlyFallback);
                break;
            }
            // Rung 3a — drop the whole schedule and retry on idle demand.
            if total_scheduled > 0 {
                shed += total_scheduled;
                degradation.push(DegradationEvent::Shed {
                    node: n, // sentinel: whole-schedule drop
                    dropped: total_scheduled,
                });
                for c in clusters.iter_mut() {
                    c.outcome.clear();
                    c.link_service.clear();
                }
                continue;
            }
            // Rung 3b — safe mode: always resolves.
            let safe = solve_safe_mode(&input);
            for &(node, deficit) in &safe.deficits {
                degradation.push(DegradationEvent::SafeMode { node, deficit });
            }
            for c in clusters.iter_mut() {
                c.admissions.clear();
                c.link_service.clear();
                let (cn, cs) = (c.net.topology().len(), c.net.session_count());
                c.flows.reset(cn, cs);
            }
            self.energy = safe.outcome;
            break;
        }

        // Drift-plus-penalty diagnostics against pre-update queue state.
        // Each sum runs over clusters in id order on one thread, so it is
        // one fixed f64 association — identical to the dense chain when
        // there is a single cluster, deterministic always.
        let lyapunov_before = sharded_lyapunov(clusters, &self.uncovered, &self.z);
        let psi1 = dpp::psi1(
            self.beta,
            clusters.iter().flat_map(|c| {
                c.link_service
                    .iter()
                    .map(|&(i, j, pkts)| c.links.h(i, j) * pkts.count_f64())
            }),
        );
        let psi2 = dpp::psi2(
            clusters.iter().flat_map(|c| {
                c.admissions.iter().map(|a| {
                    (
                        c.data.backlog(a.source, a.session).count_f64(),
                        a.packets.count_f64(),
                    )
                })
            }),
            self.config.lambda,
            self.config.v,
        );
        let psi3 = dpp::psi3(clusters.iter().flat_map(|c| {
            c.flows.iter_nonzero().map(|(s, i, j, l)| {
                let coeff = -c.data.backlog(i, s).count_f64()
                    + c.data.backlog(j, s).count_f64()
                    + self.beta * c.links.h(i, j);
                (coeff, l.count_f64())
            })
        }));

        // Advance queues per cluster and batteries globally.
        let mut admitted = 0u64;
        let mut routed = 0u64;
        let mut scheduled_links = 0usize;
        for c in clusters.iter_mut() {
            c.admission_triples.clear();
            c.admission_triples.extend(
                c.admissions
                    .iter()
                    .filter(|a| a.packets > Packets::ZERO)
                    .map(|a| (a.session, a.source, a.packets)),
            );
            admitted += c
                .admission_triples
                .iter()
                .map(|&(_, _, k)| k.count())
                .sum::<u64>();
            routed += c.flows.total().count();
            scheduled_links += c.outcome.schedule.len();
            c.data.advance(&c.flows, &c.admission_triples);
            c.links.advance(&c.flows, &c.link_service);
        }
        for (battery, decision) in self.batteries.iter_mut().zip(&self.energy.decisions) {
            decision
                .apply_to_battery(battery)
                .expect("validated decision must apply");
        }
        self.z_after.clear();
        self.z_after.extend((0..n).map(|i| {
            dpp::shifted_level(
                self.batteries[i].level(),
                self.config.v,
                self.gamma_max,
                self.batteries[i].discharge_limit(),
            )
        }));
        for c in clusters.iter_mut() {
            c.z.clear();
            c.z.extend(c.nodes.iter().map(|&g| self.z_after[g]));
        }
        let lyapunov_after = sharded_lyapunov(clusters, &self.uncovered, &self.z_after);

        let report = SlotReport {
            slot: self.slot,
            cost: self.energy.cost,
            grid_draw: self.energy.grid_draw,
            scheduled_links,
            admitted: Packets::new(admitted),
            routed: Packets::new(routed),
            psi1,
            psi2,
            psi3,
            psi4: self.energy.objective,
            lyapunov_before,
            lyapunov_after,
            shed_transmissions: shed,
            degradation,
        };
        self.slot += 1;
        Ok(report)
    }

    /// The cluster decomposition this controller solves over.
    #[must_use]
    pub fn decomposition(&self) -> &ClusterSet {
        &self.decomposition
    }

    /// Number of clusters that carry a sub-network solver (clusters with
    /// at least one base station).
    #[must_use]
    pub fn solver_count(&self) -> usize {
        self.clusters.len()
    }

    /// The configured worker-thread cap.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Slots stepped so far.
    #[must_use]
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// When the decomposition is a single cluster covering every node
    /// (pruning off, or one fully connected component), its sub-network —
    /// which is then exactly the dense [`Scenario::build_network`] result.
    #[must_use]
    pub fn single_network(&self) -> Option<&Network> {
        if self.decomposition.len() == 1 && self.clusters.len() == 1 {
            Some(&self.clusters[0].net)
        } else {
            None
        }
    }

    /// The live dynamic network state, or `None` when both the sleep and
    /// cooperation policies are disabled (the state is then inert).
    #[must_use]
    pub fn network_state(&self) -> Option<&NetworkState> {
        self.net_state.dynamic().then_some(&self.net_state)
    }

    /// How many times an awake-set change triggered recomputation of the
    /// effective decomposition.
    #[must_use]
    pub fn redecompositions(&self) -> u64 {
        self.redecompositions
    }

    /// The decomposition over the currently-awake node set. Equals
    /// [`ShardedController::decomposition`] until a BS sleeps; sleeping
    /// base stations split off as singleton clusters.
    #[must_use]
    pub fn effective_decomposition(&self) -> &ClusterSet {
        &self.effective
    }

    /// Total data-queue backlog across all clusters (stability telemetry).
    #[must_use]
    pub fn total_data_backlog(&self) -> Packets {
        Packets::new(
            self.clusters
                .iter()
                .map(|c| c.data.total_backlog().count())
                .sum(),
        )
    }
}

/// `Σ_c L_c + ½·Σ_{uncovered} z²`: the Lyapunov value decomposes over
/// clusters because every queue (data, link) lives inside one cluster and
/// the energy term is a per-node sum. Uncovered nodes have no queues, so
/// only their shifted-energy term remains.
fn sharded_lyapunov(clusters: &[ClusterSolver], uncovered: &[usize], z: &[f64]) -> f64 {
    let mut total = 0.0;
    for c in clusters {
        total += lyapunov_value(&c.data, &c.links, &c.z);
    }
    for &g in uncovered {
        total += 0.5 * z[g] * z[g];
    }
    total
}

/// Drives a [`ShardedController`] with observations drawn by the exact
/// per-stream discipline of the dense [`Simulator`](crate::Simulator):
/// the master seed splits into topology, band, renewable, grid, and
/// demand streams in that order, and each slot consumes draws in the same
/// sequence — so a fault-free, i.i.d.-grid scenario produces
/// bit-identical observations on either driver.
#[derive(Debug)]
pub struct CitySim {
    scenario: Scenario,
    controller: ShardedController,
    band_rng: Rng,
    renewable_rng: Rng,
    grid_rng: Rng,
    demand_rng: Rng,
    is_bs: Vec<bool>,
    session_cells: Vec<usize>,
    session_nominal: Vec<Packets>,
    slots_run: usize,
}

impl CitySim {
    /// Single-threaded construction; see [`CitySim::with_workers`].
    ///
    /// # Errors
    ///
    /// See [`CitySim::with_workers`].
    pub fn new(scenario: &Scenario) -> Result<Self, SimError> {
        Self::with_workers(scenario, 1)
    }

    /// Builds the sharded controller and observation streams.
    ///
    /// # Errors
    ///
    /// [`SimError::UnsupportedAtScale`] for Markov grid chains (their
    /// per-node state is wired into the dense engine) and for anything
    /// [`ShardedController::with_workers`] rejects.
    pub fn with_workers(scenario: &Scenario, workers: usize) -> Result<Self, SimError> {
        if matches!(scenario.grid_model, GridModel::Markov { .. }) {
            return Err(SimError::UnsupportedAtScale {
                detail: "Markov grid chains are only wired into the dense Simulator".into(),
            });
        }
        let mut master = Rng::seed_from(scenario.seed);
        let _topology = master.split(); // consumed by build_layout
        let band_rng = master.split();
        let renewable_rng = master.split();
        let grid_rng = master.split();
        let demand_rng = master.split();
        let controller = ShardedController::with_workers(scenario, workers)?;
        let layout = scenario.build_layout();
        let session_cells = layout.session_cells();
        let session_nominal = layout
            .sessions
            .iter()
            .map(|&(_, demand)| (demand * scenario.slot).whole_packets(scenario.packet_size))
            .collect();
        Ok(Self {
            scenario: scenario.clone(),
            controller,
            band_rng,
            renewable_rng,
            grid_rng,
            demand_rng,
            is_bs: layout.kinds.iter().map(|k| k.is_base_station()).collect(),
            session_cells,
            session_nominal,
            slots_run: 0,
        })
    }

    /// Draws the next slot's observation (advancing every stream and the
    /// slot counter) without stepping the controller. Pair with
    /// [`CitySim::controller_mut`] to drive the solve yourself — e.g. to
    /// pre-draw observations outside a measured region.
    pub fn next_observation(&mut self) -> SlotObservation {
        let s = &self.scenario;
        let mut bandwidths = Vec::with_capacity(s.band_count());
        bandwidths.push(Bandwidth::from_megahertz(s.cellular_band_mhz));
        for &(lo, hi) in &s.random_bands {
            bandwidths.push(Bandwidth::from_megahertz(self.band_rng.range_f64(lo, hi)));
        }
        let renewables_on = s.architecture.renewables_enabled();
        let renewable: Vec<Energy> = self
            .is_bs
            .iter()
            .map(|&bs| {
                let max = if bs {
                    s.bs_renewable_max
                } else {
                    s.user_renewable_max
                };
                // Draw even when disabled (common random numbers).
                let watts = self.renewable_rng.range_f64(0.0, max.as_watts());
                if renewables_on {
                    Power::from_watts(watts) * s.slot
                } else {
                    Energy::ZERO
                }
            })
            .collect();
        let grid_connected: Vec<bool> = self
            .is_bs
            .iter()
            .map(|&bs| {
                let draw = self.grid_rng.chance(s.user_grid_probability);
                bs || draw
            })
            .collect();
        let n_cells = s.bs_positions.len();
        let session_demand: Vec<Packets> = self
            .session_nominal
            .iter()
            .enumerate()
            .map(|(sid, &base)| {
                let mut nominal = base;
                if let Some(profile) = s.diurnal {
                    nominal =
                        profile.scale(nominal, self.slots_run, self.session_cells[sid], n_cells);
                }
                match s.demand_model {
                    DemandModel::Constant => nominal,
                    DemandModel::Poisson => {
                        let poisson = Poisson::new(nominal.count_f64()).expect("non-negative mean");
                        Packets::new(poisson.sample(&mut self.demand_rng))
                    }
                }
            })
            .collect();
        let price_multiplier = s.pricing.multiplier(self.slots_run);
        self.slots_run += 1;
        SlotObservation {
            spectrum: SpectrumState::new(bandwidths),
            renewable,
            grid_connected,
            session_demand,
            price_multiplier,
            node_available: vec![],
        }
    }

    /// Draws one observation and steps the controller.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedController::step`] errors.
    pub fn step(&mut self) -> Result<SlotReport, SimError> {
        let obs = self.next_observation();
        self.controller.step(&obs)
    }

    /// Runs the scenario's full horizon, collecting every slot report.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CitySim::step`] error.
    pub fn run(&mut self) -> Result<Vec<SlotReport>, SimError> {
        let mut reports = Vec::with_capacity(self.scenario.horizon);
        for _ in 0..self.scenario.horizon {
            reports.push(self.step()?);
        }
        Ok(reports)
    }

    /// The scenario this simulation runs.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The underlying sharded controller.
    #[must_use]
    pub fn controller(&self) -> &ShardedController {
        &self.controller
    }

    /// Mutable access to the controller, for callers that pre-draw
    /// observations with [`CitySim::next_observation`].
    pub fn controller_mut(&mut self) -> &mut ShardedController {
        &mut self.controller
    }

    /// Slots stepped (or observed) so far.
    #[must_use]
    pub fn slots_run(&self) -> usize {
        self.slots_run
    }
}
