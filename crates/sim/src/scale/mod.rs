//! City-scale scenarios: spatial indexing, interference pruning, and
//! cluster-parallel slot solves.
//!
//! The paper's evaluation runs 22 nodes; this module grows the same
//! pipeline to 10⁵ users without changing a single decision it makes:
//!
//! * [`Scenario::city`](crate::Scenario::city) — a deterministic
//!   city-scale scenario generator: Poisson-disk base-station placement,
//!   clustered user hotspots, per-cell diurnal traffic, and the provably
//!   lossless interference pruning floor of
//!   `PhyConfig::prune_gain_floor` already applied.
//! * [`ClusterSet`] — connected components of the pruned interference
//!   graph, found with the `GridIndex` spatial hash in `Θ(n)` expected
//!   time. Pruning is *exact-zero only*: a gain is zeroed iff it is
//!   already below the receiver's thermal noise floor, so the components
//!   are interference-closed and independent per-slot subproblems.
//! * [`ShardedController`] — runs S1–S3 cluster-parallel (each cluster
//!   solves on its own sub-network and queue banks) and S4 globally (the
//!   grid cost couples every base station through `f(P)`), walking the
//!   same degradation ladder as the dense
//!   [`Controller`](greencell_core::Controller). With pruning disabled
//!   there is exactly one cluster and every slot report is bit-identical
//!   to the dense pipeline.
//! * [`CitySim`] — drives a [`ShardedController`] with observations drawn
//!   by the exact stream discipline of the dense
//!   [`Simulator`](crate::Simulator), so the two are interchangeable
//!   wherever both can run.
//!
//! What the sharded path deliberately does **not** support (it returns
//! [`SimError::UnsupportedAtScale`](crate::SimError) instead): log-normal
//! shadowing (it breaks the geometric closure argument), fault injection,
//! and Markov grid chains. Routing is restricted to within-cluster links —
//! a *principled* divergence, not an approximation: a pruned (exact-zero)
//! gain can never satisfy the SINR threshold, so a cross-cluster link can
//! never be scheduled and any flow routed onto it would queue forever.

mod city;
mod cluster;
mod shard;

pub use cluster::ClusterSet;
pub use shard::{CitySim, ShardedController};
