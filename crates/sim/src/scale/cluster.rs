//! Connected components of the pruned interference graph.

use greencell_net::{GridIndex, PathLossModel};

use crate::scenario::{Scenario, ScenarioLayout};

/// The partition of a layout's nodes into interference clusters.
///
/// Two nodes are connected iff their *unshadowed* path-loss gain survives
/// the scenario's pruning floor — exactly the predicate
/// `Topology::with_shadowing` applies when zeroing gains, evaluated with
/// the same `f64` operations. Because pruning only zeroes gains already
/// below the thermal noise floor (see `PhyConfig::prune_gain_floor`),
/// every surviving signal *and* interference term of the physical model
/// stays within one cluster: the components are independent per-slot
/// subproblems for S1–S3.
///
/// With pruning disabled (`gain_floor <= 0`) there is exactly one cluster
/// holding every node.
///
/// Cluster ids are assigned in order of first appearance over ascending
/// node index, and each cluster's member list is ascending — both are
/// deterministic functions of the layout alone, independent of worker
/// count or hash state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSet {
    membership: Vec<usize>,
    clusters: Vec<Vec<usize>>,
}

impl ClusterSet {
    /// Decomposes `layout` under `scenario`'s pruning floor using a
    /// spatial grid over node positions: only pairs within the cutoff
    /// radius (plus a conservative rounding margin) are tested with the
    /// exact gain predicate, so expected cost is `Θ(n)` at bounded
    /// density instead of `Θ(n²)`.
    ///
    /// # Panics
    ///
    /// Panics if the layout carries shadowing offsets — shadowed gains are
    /// not a function of distance, so the geometric prefilter (and the
    /// closure guarantee) would not hold. The sharded path rejects
    /// shadowing before calling this.
    #[must_use]
    pub fn decompose(layout: &ScenarioLayout, scenario: &Scenario) -> Self {
        assert!(
            layout.shadowing_db.is_empty(),
            "cluster decomposition requires unshadowed gains"
        );
        let n = layout.len();
        if scenario.gain_floor <= 0.0 {
            return Self {
                membership: vec![0; n],
                clusters: if n == 0 {
                    vec![]
                } else {
                    vec![(0..n).collect()]
                },
            };
        }
        let d_cut = scenario
            .cutoff_radius_m()
            .expect("positive floor implies a finite cutoff");
        let model = PathLossModel::new(scenario.path_loss_c, scenario.path_loss_gamma);
        let floor = scenario.gain_floor;
        let mut index = GridIndex::new(d_cut, scenario.area_m, scenario.area_m);
        for &p in &layout.positions {
            index.insert(p);
        }
        // The grid scan radius gets a hair of slack so float rounding in
        // `d_cut = (C/F)^{1/γ}` can never exclude a pair whose exact gain
        // still clears the floor; the gain predicate itself is exact.
        let scan = d_cut * 1.0001;
        let mut parent: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let pi = layout.positions[i];
            index.for_neighbors_within(pi, scan, |j, pj| {
                if j < i && model.gain(pi.distance_to(pj)) >= floor {
                    union(&mut parent, i, j);
                }
            });
        }
        Self::from_parents(&mut parent)
    }

    /// Like [`ClusterSet::decompose`], but with every node flagged in
    /// `masked` (the sharded controller passes its sleeping base
    /// stations) excluded from edge formation: a masked node forms a
    /// singleton cluster and components that were only bridged by masked
    /// nodes split apart. Deterministic for the same inputs — the sharded
    /// controller recomputes this whenever the awake set changes, so the
    /// effective decomposition it reports tracks the live network.
    ///
    /// # Panics
    ///
    /// Panics if the layout carries shadowing offsets or if `masked` does
    /// not hold exactly one entry per node.
    #[must_use]
    pub fn decompose_masked(layout: &ScenarioLayout, scenario: &Scenario, masked: &[bool]) -> Self {
        assert!(
            layout.shadowing_db.is_empty(),
            "cluster decomposition requires unshadowed gains"
        );
        let n = layout.len();
        assert_eq!(masked.len(), n, "one mask entry per node");
        let mut parent: Vec<usize> = (0..n).collect();
        if scenario.gain_floor <= 0.0 {
            // No pruning: every unmasked node joins one component.
            let mut prev = usize::MAX;
            for i in (0..n).filter(|&i| !masked[i]) {
                if prev != usize::MAX {
                    union(&mut parent, prev, i);
                }
                prev = i;
            }
        } else {
            let d_cut = scenario
                .cutoff_radius_m()
                .expect("positive floor implies a finite cutoff");
            let model = PathLossModel::new(scenario.path_loss_c, scenario.path_loss_gamma);
            let floor = scenario.gain_floor;
            let mut index = GridIndex::new(d_cut, scenario.area_m, scenario.area_m);
            for &p in &layout.positions {
                index.insert(p);
            }
            let scan = d_cut * 1.0001;
            for i in 0..n {
                if masked[i] {
                    continue;
                }
                let pi = layout.positions[i];
                index.for_neighbors_within(pi, scan, |j, pj| {
                    if j < i && !masked[j] && model.gain(pi.distance_to(pj)) >= floor {
                        union(&mut parent, i, j);
                    }
                });
            }
        }
        Self::from_parents(&mut parent)
    }

    /// Collapses a union-find forest into dense cluster ids (order of
    /// first appearance over ascending node index) and ascending member
    /// lists — the shared tail of both decompositions.
    fn from_parents(parent: &mut [usize]) -> Self {
        let n = parent.len();
        let mut membership = vec![0usize; n];
        let mut root_id = vec![usize::MAX; n];
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for (i, slot) in membership.iter_mut().enumerate() {
            let r = find(parent, i);
            if root_id[r] == usize::MAX {
                root_id[r] = clusters.len();
                clusters.push(Vec::new());
            }
            *slot = root_id[r];
            clusters[root_id[r]].push(i);
        }
        Self {
            membership,
            clusters,
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` if the layout had no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster id of node `node`.
    #[must_use]
    pub fn cluster_of(&self, node: usize) -> usize {
        self.membership[node]
    }

    /// Per-node cluster ids, indexed by node.
    #[must_use]
    pub fn membership(&self) -> &[usize] {
        &self.membership
    }

    /// Member lists (ascending node ids), indexed by cluster id.
    #[must_use]
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// The size of the largest cluster (0 when empty) — the quantity that
    /// bounds per-slot cost, since each cluster solves a dense
    /// `Θ(|cluster|²)` subproblem.
    #[must_use]
    pub fn largest(&self) -> usize {
        self.clusters.iter().map(Vec::len).max().unwrap_or(0)
    }
}

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]]; // path halving
        x = parent[x];
    }
    x
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        // Deterministic: smaller root wins (no rank state to seed).
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi] = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    #[test]
    fn no_pruning_means_one_cluster() {
        let s = Scenario::tiny(3);
        let layout = s.build_layout();
        let set = ClusterSet::decompose(&layout, &s);
        assert_eq!(set.len(), 1);
        assert_eq!(set.clusters()[0].len(), layout.len());
        assert!(set.membership().iter().all(|&c| c == 0));
    }

    #[test]
    fn city_cells_separate_into_clusters() {
        let s = Scenario::city(100, 4, Scenario::default_city_area(4), 5);
        let layout = s.build_layout();
        let set = ClusterSet::decompose(&layout, &s);
        assert!(
            set.len() >= 2,
            "expected separated cells, got {}",
            set.len()
        );
        // Every cluster edge the decomposition claims is backed by the
        // exact predicate; verify closure brute-force: any surviving gain
        // connects nodes of the same cluster.
        let model = PathLossModel::new(s.path_loss_c, s.path_loss_gamma);
        for i in 0..layout.len() {
            for j in (i + 1)..layout.len() {
                let g = model.gain(layout.positions[i].distance_to(layout.positions[j]));
                if g >= s.gain_floor {
                    assert_eq!(
                        set.cluster_of(i),
                        set.cluster_of(j),
                        "surviving gain {g} crosses clusters ({i}, {j})"
                    );
                }
            }
        }
        // Members are ascending and ids dense.
        for members in set.clusters() {
            assert!(members.windows(2).all(|w| w[0] < w[1]));
            assert!(!members.is_empty());
        }
    }

    #[test]
    fn masking_a_node_makes_it_a_singleton() {
        let s = Scenario::tiny(3);
        let layout = s.build_layout();
        let n = layout.len();
        let mut masked = vec![false; n];
        let unmasked = ClusterSet::decompose_masked(&layout, &s, &masked);
        assert_eq!(unmasked, ClusterSet::decompose(&layout, &s));
        masked[0] = true;
        let set = ClusterSet::decompose_masked(&layout, &s, &masked);
        assert_eq!(set.len(), 2, "masked node splits off");
        assert_eq!(set.clusters()[0], vec![0]);
        assert_eq!(set.clusters()[1], (1..n).collect::<Vec<_>>());
    }

    #[test]
    fn masking_respects_the_pruned_graph() {
        let s = Scenario::city(100, 4, Scenario::default_city_area(4), 5);
        let layout = s.build_layout();
        let base = ClusterSet::decompose(&layout, &s);
        // Mask the first BS: the masked decomposition must have at least
        // as many clusters, with the BS alone in its own.
        let mut masked = vec![false; layout.len()];
        masked[0] = true;
        let set = ClusterSet::decompose_masked(&layout, &s, &masked);
        assert!(set.len() >= base.len());
        let c0 = set.cluster_of(0);
        assert_eq!(set.clusters()[c0], vec![0]);
    }
}
