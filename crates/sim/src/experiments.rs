//! One runner per paper figure. Each returns the exact series/rows the
//! paper plots; the `fig2*` binaries print them via [`crate::report`].

use crate::sweep::{run_sweep, PointOutcome, SweepOptions, SweepPoint as EnginePoint, SweepReport};
use crate::{Architecture, RunMetrics, Scenario, SimError, Simulator};
use greencell_stochastic::Series;

/// One `(V, upper, lower)` row of Fig. 2(a).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsRow {
    /// The Lyapunov weight.
    pub v: f64,
    /// Upper bound: the proposed algorithm's time-averaged cost `ψ_P3`.
    pub upper: f64,
    /// Lower bound: the relaxed controller's `ψ*_P̄3 − B/V` (Theorem 5).
    pub lower: f64,
    /// The raw relaxed average cost (before subtracting `B/V`).
    pub relaxed_cost: f64,
    /// The gap constant contribution `B/V`.
    pub gap: f64,
    /// Upper bound on the P2 objective `ψ = f̄ − λ·Σ_s k̄_s` (includes the
    /// admission reward, the quantity P2 actually minimizes).
    pub upper_psi: f64,
    /// Lower bound on the P2 objective: relaxed `ψ` minus `B/V`.
    pub lower_psi: f64,
}

/// Fig. 2(a): upper and lower bounds on `ψ*_P1` versus `V`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig2a(base: &Scenario, v_values: &[f64]) -> Result<Vec<BoundsRow>, SimError> {
    fig2a_with(base, v_values, &SweepOptions::serial()).map(|(rows, _)| rows)
}

/// [`fig2a`] on the sweep engine: fans the `V` points across
/// `opts.threads` workers and also returns the engine's telemetry report.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig2a_with(
    base: &Scenario,
    v_values: &[f64],
    opts: &SweepOptions,
) -> Result<(Vec<BoundsRow>, SweepReport), SimError> {
    let points: Vec<EnginePoint> = v_values
        .iter()
        .map(|&v| {
            let mut scenario = base.clone();
            scenario.v = v;
            scenario.track_lower_bound = true;
            EnginePoint::new(format!("V={v:e}"), scenario)
        })
        .collect();
    let report = run_sweep(&points, opts)?;
    let lambda = base.lambda;
    let rows = v_values
        .iter()
        .zip(&report.outcomes)
        .map(|(&v, o)| {
            let metrics = &o.metrics;
            let relaxed_cost = metrics.relaxed_cost_series().mean();
            let upper_psi = metrics.average_cost() - lambda * metrics.admitted_series().mean();
            let lower_psi =
                relaxed_cost - lambda * o.relaxed_admitted.unwrap_or(0.0) - o.penalty_b / v;
            BoundsRow {
                v,
                upper: metrics.average_cost(),
                lower: metrics.lower_bound().expect("tracked"),
                relaxed_cost,
                gap: o.penalty_b / v,
                upper_psi,
                lower_psi,
            }
        })
        .collect();
    Ok((rows, report))
}

/// One V's backlog trajectories for Fig. 2(b) (BSs) and 2(c) (users).
#[derive(Debug, Clone, PartialEq)]
pub struct BacklogRow {
    /// The Lyapunov weight.
    pub v: f64,
    /// Total BS data-queue backlog per slot.
    pub bs: Series,
    /// Total user data-queue backlog per slot.
    pub users: Series,
}

/// Fig. 2(b)/(c): total data-queue backlogs over time for a sweep of `V`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig2bc(base: &Scenario, v_values: &[f64]) -> Result<Vec<BacklogRow>, SimError> {
    fig2bc_with(base, v_values, &SweepOptions::serial()).map(|(rows, _)| rows)
}

/// [`fig2bc`] on the sweep engine, with telemetry.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig2bc_with(
    base: &Scenario,
    v_values: &[f64],
    opts: &SweepOptions,
) -> Result<(Vec<BacklogRow>, SweepReport), SimError> {
    let report = run_sweep(&v_points(base, v_values), opts)?;
    let rows = v_values
        .iter()
        .zip(&report.outcomes)
        .map(|(&v, o)| BacklogRow {
            v,
            bs: o.metrics.backlog_bs_series().clone(),
            users: o.metrics.backlog_users_series().clone(),
        })
        .collect();
    Ok((rows, report))
}

/// One engine point per `V` value (shared by the Fig. 2 time-series runs).
fn v_points(base: &Scenario, v_values: &[f64]) -> Vec<EnginePoint> {
    v_values
        .iter()
        .map(|&v| {
            let mut scenario = base.clone();
            scenario.v = v;
            EnginePoint::new(format!("V={v:e}"), scenario)
        })
        .collect()
}

/// One V's energy-buffer trajectories for Fig. 2(d) (BSs, kWh) and 2(e)
/// (users, Wh).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferRow {
    /// The Lyapunov weight.
    pub v: f64,
    /// Total BS battery level per slot (kWh).
    pub bs_kwh: Series,
    /// Total user battery level per slot (Wh).
    pub users_wh: Series,
}

/// Fig. 2(d)/(e): total energy-buffer levels over time for a sweep of `V`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig2de(base: &Scenario, v_values: &[f64]) -> Result<Vec<BufferRow>, SimError> {
    fig2de_with(base, v_values, &SweepOptions::serial()).map(|(rows, _)| rows)
}

/// [`fig2de`] on the sweep engine, with telemetry.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig2de_with(
    base: &Scenario,
    v_values: &[f64],
    opts: &SweepOptions,
) -> Result<(Vec<BufferRow>, SweepReport), SimError> {
    let report = run_sweep(&v_points(base, v_values), opts)?;
    let rows = v_values
        .iter()
        .zip(&report.outcomes)
        .map(|(&v, o)| BufferRow {
            v,
            bs_kwh: o.metrics.buffer_bs_series().clone(),
            users_wh: o.metrics.buffer_users_series().clone(),
        })
        .collect();
    Ok((rows, report))
}

/// One `(architecture, V, cost)` cell of Fig. 2(f).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchitectureRow {
    /// The architecture simulated.
    pub architecture: Architecture,
    /// Time-averaged energy cost per `V` value, in `v_values` order.
    pub costs: Vec<f64>,
}

/// Fig. 2(f): time-averaged energy cost of the four architectures across
/// `V` values, under common random numbers.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig2f(base: &Scenario, v_values: &[f64]) -> Result<Vec<ArchitectureRow>, SimError> {
    fig2f_with(base, v_values, &SweepOptions::serial()).map(|(rows, _)| rows)
}

/// [`fig2f`] on the sweep engine: all `architecture × V` cells become one
/// flat point list, so a parallel run overlaps the whole grid.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig2f_with(
    base: &Scenario,
    v_values: &[f64],
    opts: &SweepOptions,
) -> Result<(Vec<ArchitectureRow>, SweepReport), SimError> {
    let mut points = Vec::with_capacity(Architecture::ALL.len() * v_values.len());
    for architecture in Architecture::ALL {
        for &v in v_values {
            let mut scenario = base.clone();
            scenario.v = v;
            scenario.architecture = architecture;
            points.push(EnginePoint::new(
                format!("{architecture:?}/V={v:e}"),
                scenario,
            ));
        }
    }
    let report = run_sweep(&points, opts)?;
    let rows = Architecture::ALL
        .iter()
        .enumerate()
        .map(|(a, &architecture)| ArchitectureRow {
            architecture,
            costs: report.outcomes[a * v_values.len()..(a + 1) * v_values.len()]
                .iter()
                .map(|o| o.metrics.average_cost())
                .collect(),
        })
        .collect();
    Ok((rows, report))
}

/// Convenience: run a single scenario and return its metrics.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn single_run(scenario: &Scenario) -> Result<RunMetrics, SimError> {
    let mut sim = Simulator::new(scenario)?;
    Ok(sim.run()?.clone())
}

/// Multi-seed replication of one scenario: mean and standard deviation of
/// the headline metrics across independent topologies and sample paths.
#[derive(Debug, Clone, PartialEq)]
pub struct Replication {
    /// The seeds replicated.
    pub seeds: Vec<u64>,
    /// Mean time-averaged energy cost.
    pub mean_cost: f64,
    /// Population standard deviation of the cost.
    pub std_cost: f64,
    /// Mean delivered packets.
    pub mean_delivered: f64,
    /// Mean peak total backlog (BS + users).
    pub mean_peak_backlog: f64,
}

/// Runs `base` once per seed and aggregates (the confidence companion to
/// every single-seed figure).
///
/// # Errors
///
/// Propagates simulation failures.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn replicate(base: &Scenario, seeds: &[u64]) -> Result<Replication, SimError> {
    replicate_with(base, seeds, &SweepOptions::serial()).map(|(rep, _)| rep)
}

/// [`replicate`] on the sweep engine: the seeds become independent points
/// fanned across `opts.threads` workers.
///
/// # Errors
///
/// Propagates simulation failures.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn replicate_with(
    base: &Scenario,
    seeds: &[u64],
    opts: &SweepOptions,
) -> Result<(Replication, SweepReport), SimError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let points: Vec<EnginePoint> = seeds
        .iter()
        .map(|&seed| {
            let mut scenario = base.clone();
            scenario.seed = seed;
            EnginePoint::new(format!("seed={seed}"), scenario)
        })
        .collect();
    let report = run_sweep(&points, opts)?;
    let mut costs = greencell_stochastic::RunningMean::new();
    let mut delivered = greencell_stochastic::RunningMean::new();
    let mut peaks = greencell_stochastic::RunningMean::new();
    for o in &report.outcomes {
        costs.record(o.metrics.average_cost());
        delivered.record(o.metrics.delivered() as f64);
        let peak = o.metrics.backlog_bs_series().max().unwrap_or(0.0)
            + o.metrics.backlog_users_series().max().unwrap_or(0.0);
        peaks.record(peak);
    }
    let replication = Replication {
        seeds: seeds.to_vec(),
        mean_cost: costs.mean(),
        std_cost: costs.std_dev(),
        mean_delivered: delivered.mean(),
        mean_peak_backlog: peaks.mean(),
    };
    Ok((replication, report))
}

/// One point of a structural sweep (user count, session count, …).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept value.
    pub x: f64,
    /// Time-averaged energy cost.
    pub avg_cost: f64,
    /// Delivered packets over the horizon.
    pub delivered: u64,
    /// Peak total data backlog (BS + users).
    pub peak_backlog: f64,
    /// Mean scheduled transmissions per slot.
    pub mean_scheduled: f64,
}

fn sweep_point_from(x: f64, o: &PointOutcome) -> SweepPoint {
    SweepPoint {
        x,
        avg_cost: o.metrics.average_cost(),
        delivered: o.metrics.delivered(),
        peak_backlog: o.metrics.backlog_bs_series().max().unwrap_or(0.0)
            + o.metrics.backlog_users_series().max().unwrap_or(0.0),
        mean_scheduled: o.metrics.scheduled_series().mean(),
    }
}

/// Runs one engine point per `(x, scenario)` pair and maps the outcomes.
fn structural_sweep(
    label: &str,
    specs: Vec<(f64, Scenario)>,
    opts: &SweepOptions,
) -> Result<(Vec<SweepPoint>, SweepReport), SimError> {
    let points: Vec<EnginePoint> = specs
        .iter()
        .map(|(x, scenario)| EnginePoint::new(format!("{label}={x}"), scenario.clone()))
        .collect();
    let report = run_sweep(&points, opts)?;
    let rows = specs
        .iter()
        .zip(&report.outcomes)
        .map(|(&(x, _), o)| sweep_point_from(x, o))
        .collect();
    Ok((rows, report))
}

/// Sweeps the number of users (relay density) — more relays should help
/// multi-hop serve the same sessions with shorter hops.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sweep_users(base: &Scenario, counts: &[usize]) -> Result<Vec<SweepPoint>, SimError> {
    sweep_users_with(base, counts, &SweepOptions::serial()).map(|(rows, _)| rows)
}

/// [`sweep_users`] on the sweep engine, with telemetry.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sweep_users_with(
    base: &Scenario,
    counts: &[usize],
    opts: &SweepOptions,
) -> Result<(Vec<SweepPoint>, SweepReport), SimError> {
    let specs = counts
        .iter()
        .map(|&users| {
            let mut scenario = base.clone();
            scenario.users = users.max(scenario.sessions);
            (users as f64, scenario)
        })
        .collect();
    structural_sweep("users", specs, opts)
}

/// Sweeps the number of sessions (offered load).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sweep_sessions(base: &Scenario, counts: &[usize]) -> Result<Vec<SweepPoint>, SimError> {
    sweep_sessions_with(base, counts, &SweepOptions::serial()).map(|(rows, _)| rows)
}

/// [`sweep_sessions`] on the sweep engine, with telemetry.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sweep_sessions_with(
    base: &Scenario,
    counts: &[usize],
    opts: &SweepOptions,
) -> Result<(Vec<SweepPoint>, SweepReport), SimError> {
    let specs = counts
        .iter()
        .map(|&sessions| {
            let mut scenario = base.clone();
            scenario.sessions = sessions;
            (sessions as f64, scenario)
        })
        .collect();
    structural_sweep("sessions", specs, opts)
}

/// Head-to-head comparison of the two S1 schedulers on the *same*
/// recorded observation trace (perfectly paired).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerComparison {
    /// Greedy scheduler's time-averaged energy cost.
    pub greedy_cost: f64,
    /// Sequential-fix scheduler's time-averaged energy cost.
    pub sequential_fix_cost: f64,
    /// Greedy scheduler's delivered packets.
    pub greedy_delivered: u64,
    /// Sequential-fix scheduler's delivered packets.
    pub sequential_fix_delivered: u64,
}

/// Runs the greedy and sequential-fix S1 algorithms over an identical
/// observation trace and compares cost and throughput — the `s1_ablation`
/// companion experiment (wall-clock lives in the Criterion benches).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn scheduler_comparison(base: &Scenario) -> Result<SchedulerComparison, SimError> {
    let mut recorder = Simulator::new(base)?;
    let (_, trace) = recorder.run_recording()?;

    let mut greedy_scenario = base.clone();
    greedy_scenario.scheduler = greencell_core::SchedulerKind::Greedy;
    let mut greedy = Simulator::new(&greedy_scenario)?;
    let greedy_metrics = greedy.replay(&trace)?.clone();

    let mut sf_scenario = base.clone();
    sf_scenario.scheduler = greencell_core::SchedulerKind::SequentialFix;
    let mut sf = Simulator::new(&sf_scenario)?;
    let sf_metrics = sf.replay(&trace)?.clone();

    Ok(SchedulerComparison {
        greedy_cost: greedy_metrics.average_cost(),
        sequential_fix_cost: sf_metrics.average_cost(),
        greedy_delivered: greedy_metrics.delivered(),
        sequential_fix_delivered: sf_metrics.delivered(),
    })
}

/// Head-to-head comparison of the marginal-price S4 against the
/// storage-oblivious grid-only baseline on the same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyPolicyComparison {
    /// The paper's S4 (marginal-price equilibrium): time-averaged cost.
    pub marginal_price_cost: f64,
    /// The grid-only ablation baseline: time-averaged cost.
    pub grid_only_cost: f64,
}

/// Runs both S4 policies over an identical observation trace (the
/// storage-management ablation of DESIGN.md).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn energy_policy_comparison(base: &Scenario) -> Result<EnergyPolicyComparison, SimError> {
    let mut recorder = Simulator::new(base)?;
    let (_, trace) = recorder.run_recording()?;

    let mut smart_scenario = base.clone();
    smart_scenario.energy_policy = greencell_core::EnergyPolicy::MarginalPrice;
    let mut smart = Simulator::new(&smart_scenario)?;
    let smart_metrics = smart.replay(&trace)?.clone();

    let mut naive_scenario = base.clone();
    naive_scenario.energy_policy = greencell_core::EnergyPolicy::GridOnly;
    let mut naive = Simulator::new(&naive_scenario)?;
    let naive_metrics = naive.replay(&trace)?.clone();

    Ok(EnergyPolicyComparison {
        marginal_price_cost: smart_metrics.average_cost(),
        grid_only_cost: naive_metrics.average_cost(),
    })
}

/// Sweeps the number of extra (non-cellular) spectrum bands.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sweep_bands(base: &Scenario, extra_bands: &[usize]) -> Result<Vec<SweepPoint>, SimError> {
    sweep_bands_with(base, extra_bands, &SweepOptions::serial()).map(|(rows, _)| rows)
}

/// [`sweep_bands`] on the sweep engine, with telemetry.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sweep_bands_with(
    base: &Scenario,
    extra_bands: &[usize],
    opts: &SweepOptions,
) -> Result<(Vec<SweepPoint>, SweepReport), SimError> {
    let specs = extra_bands
        .iter()
        .map(|&extra| {
            let mut scenario = base.clone();
            scenario.random_bands = vec![(1.0, 2.0); extra];
            (extra as f64, scenario)
        })
        .collect();
    structural_sweep("extra_bands", specs, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_rows_are_ordered_bounds() {
        let mut base = Scenario::tiny(23);
        base.horizon = 12;
        let rows = fig2a(&base, &[1e5, 5e5]).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.lower <= row.upper, "bound ordering violated");
            assert!(row.gap > 0.0);
        }
        // The B/V gap shrinks as V grows.
        assert!(rows[1].gap < rows[0].gap);
    }

    #[test]
    fn fig2bc_produces_one_series_per_v() {
        let mut base = Scenario::tiny(29);
        base.horizon = 8;
        let rows = fig2bc(&base, &[1e5, 2e5, 3e5]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.bs.len() == 8 && r.users.len() == 8));
    }

    #[test]
    fn fig2f_covers_all_architectures() {
        let mut base = Scenario::tiny(31);
        base.horizon = 8;
        let rows = fig2f(&base, &[1e5]).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].architecture, Architecture::Proposed);
        assert!(rows.iter().all(|r| r.costs.len() == 1));
    }
}
