//! Resumable checkpointed sweeps.
//!
//! [`run_sweep_checkpointed`] behaves exactly like
//! [`crate::sweep::run_sweep`] — same submission-order outcomes,
//! bit-identical at any worker count — but persists every completed
//! point to a checkpoint file as it lands. Killed mid-sweep and
//! restarted, it salvages the completed points (verifying each against
//! its submitted label, seed, and scenario fingerprint, so an edited
//! sweep never resurrects stale results), recomputes only the missing
//! ones, and produces final reports **byte-identical** to a
//! never-interrupted sweep.
//!
//! The checkpoint file reuses the snapshot container (two lines, FNV-1a
//! checksummed payload, atomic temp + rename writes — see
//! [`crate::snapshot`]) with its own `format` tag. A torn or corrupt
//! checkpoint is **quarantined** — renamed to `<path>.corrupt` — and the
//! sweep restarts from scratch, reporting the typed
//! [`SimError::CorruptSnapshot`] through [`CheckpointStats`] rather than
//! failing or panicking.

use crate::faults::WatchdogReport;
use crate::snapshot::{
    arr, bool_of, f64_of, fnv1a_64, get, hex_f64, hex_u64, metrics_json, metrics_of, u64_of,
    usize_of,
};
use crate::sweep::{
    json_escape, parallel_map_ordered, run_point, PointOutcome, RunTelemetry, SweepOptions,
    SweepPoint, SweepReport,
};
use crate::SimError;
use greencell_core::StageTimings;
use greencell_trace::json::{parse, Value};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The `format` tag every checkpoint header carries.
pub const CHECKPOINT_FORMAT: &str = "greencell-checkpoint";

/// The checkpoint format version this build writes and reads.
pub const CHECKPOINT_VERSION: u32 = 1;

/// What a checkpointed sweep recovered, recomputed, and rejected.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointStats {
    /// Points recovered from the checkpoint (fingerprint-verified).
    pub salvaged: usize,
    /// Points actually simulated this invocation.
    pub recomputed: usize,
    /// Checkpoint entries discarded because their label, seed, or
    /// scenario fingerprint no longer matches the submitted point.
    pub stale: usize,
    /// Where a corrupt checkpoint was moved, if one was quarantined.
    pub quarantined: Option<PathBuf>,
    /// The typed validation error that triggered the quarantine.
    pub quarantine_error: Option<SimError>,
}

fn io_err(path: &Path, e: &dyn std::fmt::Display) -> SimError {
    SimError::Io(format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Duration / telemetry / outcome codecs (exact: u64 nanos, f64 bits).
// ---------------------------------------------------------------------------

fn duration_json(d: Duration) -> String {
    hex_u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

fn duration_of(v: &Value) -> Result<Duration, String> {
    Ok(Duration::from_nanos(u64_of(v)?))
}

fn watchdog_report_json(w: &WatchdogReport) -> String {
    format!(
        "[{},{},{},{},{},{},{}]",
        hex_u64(w.slots as u64),
        hex_f64(w.trailing_slope),
        hex_f64(w.peak_backlog),
        hex_f64(w.final_backlog),
        hex_f64(w.battery_floor_kwh),
        hex_u64(w.divergent_slots as u64),
        w.stable,
    )
}

fn watchdog_report_of(v: &Value) -> Result<WatchdogReport, String> {
    let a = arr(v)?;
    if a.len() != 7 {
        return Err(format!("watchdog report has {} fields, need 7", a.len()));
    }
    Ok(WatchdogReport {
        slots: usize_of(&a[0])?,
        trailing_slope: f64_of(&a[1])?,
        peak_backlog: f64_of(&a[2])?,
        final_backlog: f64_of(&a[3])?,
        battery_floor_kwh: f64_of(&a[4])?,
        divergent_slots: usize_of(&a[5])?,
        stable: bool_of(&a[6])?,
    })
}

fn telemetry_json(t: &RunTelemetry) -> String {
    let s = &t.stages;
    format!(
        "{{\"slots\":{},\"wall_ns\":{},\"slots_per_sec\":{},\"stages\":[{},{},{},{},{}],\"final_backlog_bs\":{},\"final_backlog_users\":{},\"final_buffer_bs_kwh\":{},\"final_buffer_users_wh\":{},\"degraded_slots\":{},\"degradation_events\":{},\"watchdog\":{}}}",
        hex_u64(t.slots as u64),
        duration_json(t.wall),
        hex_f64(t.slots_per_sec),
        duration_json(s.s1),
        duration_json(s.s2),
        duration_json(s.s3),
        duration_json(s.s4),
        hex_u64(s.slots),
        hex_f64(t.final_backlog_bs),
        hex_f64(t.final_backlog_users),
        hex_f64(t.final_buffer_bs_kwh),
        hex_f64(t.final_buffer_users_wh),
        hex_u64(t.degraded_slots),
        hex_u64(t.degradation_events),
        watchdog_report_json(&t.watchdog),
    )
}

fn telemetry_of(v: &Value) -> Result<RunTelemetry, String> {
    let stages = arr(get(v, "stages")?)?;
    if stages.len() != 5 {
        return Err(format!(
            "stage timings have {} fields, need 5",
            stages.len()
        ));
    }
    Ok(RunTelemetry {
        slots: usize_of(get(v, "slots")?)?,
        wall: duration_of(get(v, "wall_ns")?)?,
        slots_per_sec: f64_of(get(v, "slots_per_sec")?)?,
        stages: StageTimings {
            s1: duration_of(&stages[0])?,
            s2: duration_of(&stages[1])?,
            s3: duration_of(&stages[2])?,
            s4: duration_of(&stages[3])?,
            slots: u64_of(&stages[4])?,
        },
        final_backlog_bs: f64_of(get(v, "final_backlog_bs")?)?,
        final_backlog_users: f64_of(get(v, "final_backlog_users")?)?,
        final_buffer_bs_kwh: f64_of(get(v, "final_buffer_bs_kwh")?)?,
        final_buffer_users_wh: f64_of(get(v, "final_buffer_users_wh")?)?,
        degraded_slots: u64_of(get(v, "degraded_slots")?)?,
        degradation_events: u64_of(get(v, "degradation_events")?)?,
        watchdog: watchdog_report_of(get(v, "watchdog")?)?,
    })
}

pub(crate) fn outcome_json(fp: u64, o: &PointOutcome) -> String {
    format!(
        "{{\"label\":\"{}\",\"seed\":{},\"scenario_fp\":{},\"penalty_b\":{},\"relaxed_admitted\":{},\"telemetry\":{},\"metrics\":{}}}",
        json_escape(&o.label),
        hex_u64(o.seed),
        hex_u64(fp),
        hex_f64(o.penalty_b),
        o.relaxed_admitted
            .map_or_else(|| "null".to_string(), hex_f64),
        telemetry_json(&o.telemetry),
        metrics_json(&o.metrics),
    )
}

/// A salvaged checkpoint entry: the outcome plus the scenario fingerprint
/// it was computed under. Also the payload of a distributed-sweep result
/// file (see [`crate::distrib`]).
pub(crate) struct SavedEntry {
    pub(crate) scenario_fp: u64,
    pub(crate) outcome: PointOutcome,
}

pub(crate) fn entry_of(v: &Value) -> Result<SavedEntry, String> {
    let relaxed_admitted = match get(v, "relaxed_admitted")? {
        Value::Null => None,
        other => Some(f64_of(other)?),
    };
    let label = get(v, "label")?
        .as_str()
        .ok_or_else(|| "label must be a string".to_string())?
        .to_string();
    Ok(SavedEntry {
        scenario_fp: u64_of(get(v, "scenario_fp")?)?,
        outcome: PointOutcome {
            label,
            seed: u64_of(get(v, "seed")?)?,
            metrics: metrics_of(get(v, "metrics")?)?,
            telemetry: telemetry_of(get(v, "telemetry")?)?,
            penalty_b: f64_of(get(v, "penalty_b")?)?,
            relaxed_admitted,
        },
    })
}

fn checkpoint_string(entries: &[Option<(u64, PointOutcome)>]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            e.as_ref()
                .map_or_else(|| "null".to_string(), |(fp, o)| outcome_json(*fp, o))
        })
        .collect();
    let payload = format!("{{\"entries\":[{}]}}", rows.join(","));
    let checksum = fnv1a_64(payload.as_bytes());
    format!(
        "{{\"format\":\"{CHECKPOINT_FORMAT}\",\"version\":{CHECKPOINT_VERSION},\"checksum\":\"0x{checksum:016x}\"}}\n{payload}\n"
    )
}

/// Parses a checkpoint file image (same two-line validated container as
/// snapshots, different format tag).
fn parse_checkpoint(text: &str, path: &Path) -> Result<Vec<Option<SavedEntry>>, SimError> {
    let path_str = path.display().to_string();
    let corrupt = |detail: String| SimError::CorruptSnapshot {
        path: path_str.clone(),
        detail,
    };
    let (header_line, rest) = text
        .split_once('\n')
        .ok_or_else(|| corrupt("missing payload line".to_string()))?;
    let payload = rest.strip_suffix('\n').unwrap_or(rest);
    if payload.contains('\n') {
        return Err(corrupt("more than two lines".to_string()));
    }
    let header = parse(header_line).map_err(|e| corrupt(format!("unparseable header: {e}")))?;
    match header.get("format").and_then(Value::as_str) {
        Some(CHECKPOINT_FORMAT) => {}
        Some(other) => {
            return Err(corrupt(format!(
                "format is `{other}`, expected `{CHECKPOINT_FORMAT}`"
            )))
        }
        None => return Err(corrupt("header has no format tag".to_string())),
    }
    let version = header
        .get("version")
        .and_then(Value::as_f64)
        .ok_or_else(|| corrupt("header has no version".to_string()))?;
    if version != f64::from(CHECKPOINT_VERSION) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let found = if version.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(&version) {
            version as u32
        } else {
            return Err(corrupt(format!("version `{version}` is not a u32")));
        };
        return Err(SimError::SnapshotVersionMismatch {
            path: path_str,
            expected: CHECKPOINT_VERSION,
            found,
        });
    }
    let declared = header
        .get("checksum")
        .ok_or_else(|| corrupt("header has no checksum".to_string()))
        .and_then(|v| u64_of(v).map_err(|e| corrupt(format!("bad checksum field: {e}"))))?;
    let actual = fnv1a_64(payload.as_bytes());
    if declared != actual {
        return Err(corrupt(format!(
            "checksum mismatch: header declares 0x{declared:016x}, payload hashes to 0x{actual:016x}"
        )));
    }
    let value = parse(payload).map_err(|e| corrupt(format!("unparseable payload: {e}")))?;
    arr(get(&value, "entries").map_err(&corrupt)?)
        .map_err(&corrupt)?
        .iter()
        .map(|entry| match entry {
            Value::Null => Ok(None),
            other => entry_of(other).map(Some).map_err(&corrupt),
        })
        .collect()
}

/// Like [`run_sweep_checkpointed`], but also reports what was salvaged,
/// recomputed, and (if the checkpoint was corrupt) quarantined.
///
/// # Errors
///
/// Returns the first (by submission order) point failure, or an I/O error
/// reading/writing the checkpoint. A *corrupt* checkpoint is not an
/// error: it is quarantined to `<path>.corrupt` and reported through the
/// stats.
///
/// # Panics
///
/// Panics only on poisoned internal mutexes (a worker panicked).
pub fn run_sweep_checkpointed_stats(
    points: &[SweepPoint],
    opts: &SweepOptions,
    checkpoint: &Path,
) -> Result<(SweepReport, CheckpointStats), SimError> {
    let start = Instant::now();
    let mut stats = CheckpointStats::default();
    let fingerprints: Vec<u64> = points
        .iter()
        .map(|p| crate::snapshot::fingerprint_debug(&p.scenario))
        .collect();
    let mut entries: Vec<Option<(u64, PointOutcome)>> = (0..points.len()).map(|_| None).collect();

    match std::fs::read_to_string(checkpoint) {
        Ok(text) => match parse_checkpoint(&text, checkpoint) {
            Ok(saved) => {
                for (i, slot) in saved.into_iter().enumerate() {
                    let Some(entry) = slot else { continue };
                    let Some(point) = points.get(i) else {
                        stats.stale += 1;
                        continue;
                    };
                    if entry.outcome.label == point.label
                        && entry.outcome.seed == point.scenario.seed
                        && entry.scenario_fp == fingerprints[i]
                    {
                        entries[i] = Some((entry.scenario_fp, entry.outcome));
                        stats.salvaged += 1;
                    } else {
                        stats.stale += 1;
                    }
                }
            }
            Err(
                e @ (SimError::CorruptSnapshot { .. } | SimError::SnapshotVersionMismatch { .. }),
            ) => {
                let mut name = checkpoint
                    .file_name()
                    .map_or_else(|| "checkpoint".into(), std::ffi::OsStr::to_os_string);
                name.push(".corrupt");
                let quarantine = checkpoint.with_file_name(name);
                std::fs::rename(checkpoint, &quarantine).map_err(|io| io_err(checkpoint, &io))?;
                stats.quarantined = Some(quarantine);
                stats.quarantine_error = Some(e);
            }
            Err(other) => return Err(other),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(io_err(checkpoint, &e)),
    }

    let missing: Vec<(usize, SweepPoint)> = points
        .iter()
        .enumerate()
        .filter(|(i, _)| entries[*i].is_none())
        .map(|(i, p)| (i, p.clone()))
        .collect();
    stats.recomputed = missing.len();

    if !missing.is_empty() {
        let state = Mutex::new(&mut entries);
        let results: Vec<Result<(), SimError>> =
            parallel_map_ordered(missing, opts.threads, |_, (idx, point)| {
                let outcome = run_point(&point.label, &point.scenario)?;
                let guard = &mut *state.lock().expect("checkpoint state poisoned");
                guard[idx] = Some((fingerprints[idx], outcome));
                // Persist inside the lock: each landing point checkpoints
                // the sweep-so-far atomically, so a kill at any moment
                // loses at most the in-flight points.
                crate::fsio::write_text_atomic(checkpoint, &checkpoint_string(guard))
                    .map_err(|e| io_err(checkpoint, &e))
            });
        for result in results {
            result?;
        }
    }

    let outcomes: Vec<PointOutcome> = entries
        .into_iter()
        .map(|e| e.expect("all points salvaged or recomputed").1)
        .collect();
    Ok((
        SweepReport {
            outcomes,
            threads: opts.threads,
            total_wall: start.elapsed(),
        },
        stats,
    ))
}

/// [`crate::sweep::run_sweep`] with crash-safe resume: completed points
/// persist to `checkpoint` (atomically, checksummed) as they land; a
/// restart salvages them and runs only what is missing. Final reports are
/// byte-identical to a never-interrupted sweep at any worker count.
///
/// # Errors
///
/// Returns the first (by submission order) point failure, or an I/O error
/// on the checkpoint path itself. Corrupt checkpoints are quarantined,
/// not fatal — use [`run_sweep_checkpointed_stats`] to observe that.
pub fn run_sweep_checkpointed(
    points: &[SweepPoint],
    opts: &SweepOptions,
    checkpoint: &Path,
) -> Result<SweepReport, SimError> {
    run_sweep_checkpointed_stats(points, opts, checkpoint).map(|(report, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("greencell-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn tiny_points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| SweepPoint::new(format!("p{i}"), Scenario::tiny(300 + i as u64)))
            .collect()
    }

    #[test]
    fn checkpointed_sweep_matches_plain_sweep() {
        let dir = temp_dir("plain");
        let points = tiny_points(3);
        let plain = crate::sweep::run_sweep(&points, &SweepOptions::serial()).expect("plain");
        let (ckpt, stats) =
            run_sweep_checkpointed_stats(&points, &SweepOptions::serial(), &dir.join("sweep.ckpt"))
                .expect("checkpointed");
        assert_eq!(stats.salvaged, 0);
        assert_eq!(stats.recomputed, 3);
        assert_eq!(ckpt.stability_json(), plain.stability_json());
        for (a, b) in ckpt.outcomes.iter().zip(&plain.outcomes) {
            assert_eq!(a.metrics, b.metrics);
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn second_run_salvages_everything() {
        let dir = temp_dir("salvage");
        let path = dir.join("sweep.ckpt");
        let points = tiny_points(4);
        let first =
            run_sweep_checkpointed(&points, &SweepOptions::with_threads(2), &path).expect("first");
        let (second, stats) =
            run_sweep_checkpointed_stats(&points, &SweepOptions::serial(), &path).expect("second");
        assert_eq!(stats.salvaged, 4);
        assert_eq!(stats.recomputed, 0);
        // Salvaged outcomes are the *original* run's, telemetry included.
        assert_eq!(second.outcomes, first.outcomes);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn edited_points_invalidate_only_their_entries() {
        let dir = temp_dir("stale");
        let path = dir.join("sweep.ckpt");
        let mut points = tiny_points(3);
        run_sweep_checkpointed(&points, &SweepOptions::serial(), &path).expect("first");
        // Edit one point's scenario: its entry must be recomputed.
        points[1].scenario.horizon += 5;
        let (_, stats) =
            run_sweep_checkpointed_stats(&points, &SweepOptions::serial(), &path).expect("second");
        assert_eq!(stats.salvaged, 2);
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.recomputed, 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_not_fatal() {
        let dir = temp_dir("quarantine");
        let path = dir.join("sweep.ckpt");
        let points = tiny_points(2);
        run_sweep_checkpointed(&points, &SweepOptions::serial(), &path).expect("first");
        // Tear the file.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() / 2]).expect("tear");
        let (report, stats) =
            run_sweep_checkpointed_stats(&points, &SweepOptions::serial(), &path).expect("resume");
        assert_eq!(stats.salvaged, 0);
        assert_eq!(stats.recomputed, 2);
        let quarantine = stats.quarantined.expect("quarantined path");
        assert!(quarantine.exists(), "quarantine file must exist");
        assert!(matches!(
            stats.quarantine_error,
            Some(SimError::CorruptSnapshot { .. })
        ));
        assert_eq!(report.outcomes.len(), 2);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
