//! The four network architectures compared in Fig. 2(f).

use greencell_core::RelayPolicy;
use std::fmt;

/// Which of the paper's four architectures a run simulates.
///
/// Two orthogonal toggles: whether intermediate nodes may relay
/// (multi-hop), and whether nodes have renewable energy sources. The
/// proposed scheme has both; the paper's Fig. 2(f) shows it achieving the
/// lowest time-averaged energy cost, with renewables mattering more than
/// relaying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Architecture {
    /// The paper's proposal: multi-hop relaying + renewable integration.
    #[default]
    Proposed,
    /// Multi-hop relaying, but no renewable sources (grid + storage only).
    MultiHopNoRenewable,
    /// Traditional one-hop downlink with renewable sources.
    OneHopRenewable,
    /// Traditional one-hop downlink, grid only.
    OneHopNoRenewable,
}

impl Architecture {
    /// All four, in the paper's legend order.
    pub const ALL: [Architecture; 4] = [
        Architecture::Proposed,
        Architecture::MultiHopNoRenewable,
        Architecture::OneHopRenewable,
        Architecture::OneHopNoRenewable,
    ];

    /// `true` if nodes harvest renewable energy in this architecture.
    #[must_use]
    pub fn renewables_enabled(self) -> bool {
        matches!(self, Self::Proposed | Self::OneHopRenewable)
    }

    /// The relay policy the controller runs under.
    #[must_use]
    pub fn relay_policy(self) -> RelayPolicy {
        match self {
            Self::Proposed | Self::MultiHopNoRenewable => RelayPolicy::MultiHop,
            Self::OneHopRenewable | Self::OneHopNoRenewable => RelayPolicy::OneHop,
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Proposed => write!(f, "Our system"),
            Self::MultiHopNoRenewable => write!(f, "Multi-hop network w/o renewable energy"),
            Self::OneHopRenewable => write!(f, "One-hop network w/ renewable energy"),
            Self::OneHopNoRenewable => write!(f, "One-hop network w/o renewable energy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggles() {
        assert!(Architecture::Proposed.renewables_enabled());
        assert!(!Architecture::MultiHopNoRenewable.renewables_enabled());
        assert_eq!(
            Architecture::OneHopRenewable.relay_policy(),
            RelayPolicy::OneHop
        );
        assert_eq!(Architecture::Proposed.relay_policy(), RelayPolicy::MultiHop);
    }

    #[test]
    fn legend_order() {
        assert_eq!(Architecture::ALL[0], Architecture::Proposed);
        assert_eq!(Architecture::ALL.len(), 4);
    }

    #[test]
    fn display_matches_paper_legend() {
        assert_eq!(Architecture::Proposed.to_string(), "Our system");
    }
}
