//! The time-slotted simulation engine.

use crate::faults::{FaultPlan, SlotFaults, StabilityWatchdog};
use crate::{GridModel, RunMetrics, Scenario};
use greencell_core::{Controller, ControllerError, RelaxedController, SlotObservation};
use greencell_net::{Network, NetworkError, NodeId};
use greencell_phy::SpectrumState;
use greencell_stochastic::{Distribution, MarkovOnOff, Poisson, Process, Rng};
use greencell_trace::{names, NoopSink, Sink, TraceEvent};
use greencell_units::{Bandwidth, Energy, Packets};
use std::error::Error;
use std::fmt;

/// Error constructing or running a [`Simulator`], or persisting its
/// results.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The scenario produced an invalid network.
    Network(NetworkError),
    /// The controller rejected the configuration or hit an unrecoverable
    /// energy deficit.
    Controller(ControllerError),
    /// A file read or write failed (the message carries the OS error;
    /// `std::io::Error` itself is neither `Clone` nor `PartialEq`).
    Io(String),
    /// Results could not be serialized (e.g. mismatched series lengths in
    /// a CSV block).
    Serialize(String),
    /// A snapshot or checkpoint file failed validation — torn write,
    /// checksum mismatch, malformed payload, or state that contradicts the
    /// scenario it claims to belong to. The file is unusable but the error
    /// is recoverable: callers quarantine the file and fall back to an
    /// older snapshot or a fresh start.
    CorruptSnapshot {
        /// The offending file (or `"<memory>"` for in-memory decodes).
        path: String,
        /// What failed, with expected/found values where applicable.
        detail: String,
    },
    /// The snapshot was written by an incompatible format version.
    SnapshotVersionMismatch {
        /// The offending file.
        path: String,
        /// The version this build reads.
        expected: u32,
        /// The version the file declares.
        found: u32,
    },
    /// The scenario asks for a feature the sharded city-scale path does
    /// not support (e.g. shadowing, faults, or Markov grid chains, which
    /// all couple nodes across cluster boundaries or depend on global node
    /// order). Run such scenarios through the dense [`Simulator`] instead.
    UnsupportedAtScale {
        /// The unsupported feature, for the error message.
        detail: String,
    },
    /// A sweep-driver or frontier-search configuration was rejected before
    /// any work started: zero worker processes, an empty point set, an
    /// inverted or non-positive `V` range, a gap tolerance that cannot be
    /// met, … The run never silently degenerates — it fails here.
    InvalidConfig {
        /// Which knob was rejected, and why.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Network(e) => write!(f, "network construction failed: {e}"),
            Self::Controller(e) => write!(f, "controller failed: {e}"),
            Self::Io(msg) => write!(f, "I/O failed: {msg}"),
            Self::Serialize(msg) => write!(f, "serialization failed: {msg}"),
            Self::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {path}: {detail}")
            }
            Self::SnapshotVersionMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "snapshot {path} has format version {found}, this build reads {expected}"
            ),
            Self::UnsupportedAtScale { detail } => {
                write!(f, "unsupported by the sharded city-scale path: {detail}")
            }
            Self::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Network(e) => Some(e),
            Self::Controller(e) => Some(e),
            Self::Io(_)
            | Self::Serialize(_)
            | Self::CorruptSnapshot { .. }
            | Self::SnapshotVersionMismatch { .. }
            | Self::UnsupportedAtScale { .. }
            | Self::InvalidConfig { .. } => None,
        }
    }
}

impl From<NetworkError> for SimError {
    fn from(e: NetworkError) -> Self {
        Self::Network(e)
    }
}

impl From<ControllerError> for SimError {
    fn from(e: ControllerError) -> Self {
        Self::Controller(e)
    }
}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Drives a [`Controller`] (and optionally the relaxed lower-bound
/// controller on the *same* observations — the paired design behind
/// Fig. 2(a)) through a scenario's horizon.
///
/// All randomness derives from the scenario seed through independent
/// split streams, so runs are bit-for-bit reproducible and two simulators
/// with the same seed but different control policies see identical
/// weather, spectrum, and connectivity — the common-random-numbers design
/// behind Fig. 2(f).
#[derive(Debug, Clone)]
pub struct Simulator {
    // Fields are crate-visible so the snapshot codec (`crate::snapshot`)
    // can capture and overwrite the evolving state; external callers go
    // through the accessors and `snapshot()`/`restore()`.
    pub(crate) scenario: Scenario,
    pub(crate) controller: Controller,
    pub(crate) relaxed: Option<RelaxedController>,
    pub(crate) band_rng: Rng,
    pub(crate) renewable_rng: Rng,
    pub(crate) grid_rng: Rng,
    pub(crate) demand_rng: Rng,
    /// One sticky connectivity chain per node (used under
    /// [`GridModel::Markov`]; base stations' entries are ignored).
    pub(crate) grid_chains: Vec<MarkovOnOff>,
    /// The pre-expanded fault schedule, when the scenario injects faults.
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) watchdog: StabilityWatchdog,
    pub(crate) metrics: RunMetrics,
    pub(crate) slots_run: usize,
    /// Nearest-BS index per session destination — the diurnal profile's
    /// "cell". Derived from the network in [`Simulator::new`], never
    /// serialized: snapshots rebuild it from the scenario.
    session_cells: Vec<usize>,
    /// Drive the controller through its frozen pre-pipeline oracle instead
    /// of the staged driver (equivalence testing only).
    reference: bool,
}

impl Simulator {
    /// Builds the network, controller, and random streams for `scenario`.
    ///
    /// # Errors
    ///
    /// Propagates network validation and controller construction failures.
    pub fn new(scenario: &Scenario) -> Result<Self, SimError> {
        let net = scenario.build_network()?;
        // Stream discipline: the scenario's topology stream is the master's
        // first split (consumed inside `build_network`); the simulator takes
        // the subsequent splits in a fixed order.
        let mut master = Rng::seed_from(scenario.seed);
        let _topology_stream = master.split();
        let band_rng = master.split();
        let renewable_rng = master.split();
        let mut grid_rng = master.split();
        let demand_rng = master.split();
        // The fault stream splits *after* every pre-existing stream, so a
        // fault-free scenario keeps its historical sample paths bit-exact.
        let mut fault_rng = master.split();
        let fault_plan = scenario.faults.as_ref().map(|spec| {
            let is_bs: Vec<bool> = net
                .topology()
                .nodes()
                .iter()
                .map(|n| n.kind().is_base_station())
                .collect();
            FaultPlan::generate(
                spec,
                &is_bs,
                scenario.band_count(),
                scenario.horizon,
                &mut fault_rng,
            )
        });
        let grid_chains = match scenario.grid_model {
            GridModel::Iid => Vec::new(),
            GridModel::Markov { stay_on, stay_off } => (0..net.topology().len())
                .map(|_| {
                    MarkovOnOff::new(stay_on, stay_off, true, grid_rng.split())
                        .expect("validated probabilities")
                })
                .collect(),
        };

        let energy = scenario.energy_config(&net);
        let config = scenario.controller_config();
        let phy = scenario.phy();
        let relaxed = scenario
            .track_lower_bound
            .then(|| RelaxedController::new(net.clone(), phy, energy.clone(), config));
        let total_demand: f64 = (0..scenario.sessions)
            .map(|_| scenario.demand_packets_per_slot().count_f64())
            .sum();
        let watchdog = StabilityWatchdog::for_demand(total_demand);
        let session_cells: Vec<usize> = net
            .sessions()
            .iter()
            .map(|sess| {
                let dest = net.topology().node(sess.destination()).position();
                net.topology()
                    .base_stations()
                    .enumerate()
                    .min_by(|&(a, i), &(b, j)| {
                        let da = net.topology().node(i).position().distance_to(dest);
                        let db = net.topology().node(j).position().distance_to(dest);
                        da.as_meters().total_cmp(&db.as_meters()).then(a.cmp(&b))
                    })
                    .map(|(cell, _)| cell)
                    .unwrap_or(0)
            })
            .collect();
        let controller = Controller::new(net, phy, energy, config)?;
        Ok(Self {
            scenario: scenario.clone(),
            controller,
            relaxed,
            band_rng,
            renewable_rng,
            grid_rng,
            demand_rng,
            grid_chains,
            fault_plan,
            watchdog,
            metrics: RunMetrics::new(),
            slots_run: 0,
            session_cells,
            reference: false,
        })
    }

    /// Routes every subsequent step through the controller's frozen
    /// pre-pipeline oracle (`Controller::step_reference`) instead of the
    /// staged driver. Equivalence-test plumbing, not part of the public
    /// API: observations, faults, and metrics are produced identically, so
    /// a reference run and a pipeline run from the same scenario must
    /// match bit for bit.
    #[doc(hidden)]
    pub fn set_reference(&mut self, reference: bool) {
        self.reference = reference;
    }

    /// The controller under simulation.
    #[must_use]
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the controller under simulation, e.g. to swap an
    /// energy stage through [`Controller::set_energy_stage`] for an
    /// ablation run. Swapping mid-run changes behaviour from the next slot
    /// onward only; queue and battery state carry over.
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// The network under simulation.
    #[must_use]
    pub fn network(&self) -> &Network {
        self.controller.network()
    }

    /// Metrics collected so far.
    #[must_use]
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The relaxed controller's time-averaged admissions, when tracked.
    #[must_use]
    pub fn relaxed_average_admitted(&self) -> Option<f64> {
        self.relaxed.as_ref().map(|r| r.average_admitted())
    }

    /// The strong-stability watchdog's view of the run so far.
    #[must_use]
    pub fn watchdog(&self) -> &StabilityWatchdog {
        &self.watchdog
    }

    /// The expanded fault schedule, when the scenario injects faults.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Slots advanced so far — the fault-plan cursor and the next slot
    /// index [`Simulator::step`] will run.
    #[must_use]
    pub fn slots_run(&self) -> usize {
        self.slots_run
    }

    /// The scenario this simulator was built from.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs the remaining horizon and finalizes — identical to
    /// [`Simulator::run`], which already continues from `slots_run`; the
    /// alias exists so restore-and-resume call sites read as what they do.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable controller errors.
    pub fn resume(&mut self) -> Result<&RunMetrics, SimError> {
        self.run()
    }

    /// Samples one slot's random observation, overlaying any faults the
    /// plan schedules for this slot. Faults are applied *after* the
    /// healthy draws, so a faulted run consumes exactly the random stream
    /// a fault-free run would — common random numbers across fault
    /// scenarios.
    fn observe(&mut self) -> SlotObservation {
        let faults: Option<SlotFaults> = self
            .fault_plan
            .as_ref()
            .and_then(|p| p.slot(self.slots_run))
            .cloned();
        let s = &self.scenario;
        let mut bandwidths = Vec::with_capacity(s.band_count());
        bandwidths.push(Bandwidth::from_megahertz(s.cellular_band_mhz));
        for &(lo, hi) in &s.random_bands {
            bandwidths.push(Bandwidth::from_megahertz(self.band_rng.range_f64(lo, hi)));
        }
        if let Some(f) = &faults {
            for (m, &down) in f.band_down.iter().enumerate() {
                if down {
                    bandwidths[m] = Bandwidth::from_megahertz(0.0);
                }
            }
        }
        let net = self.controller.network();
        let renewables_on = s.architecture.renewables_enabled();
        let mut renewable: Vec<Energy> = net
            .topology()
            .nodes()
            .iter()
            .map(|node| {
                let max = if node.kind().is_base_station() {
                    s.bs_renewable_max
                } else {
                    s.user_renewable_max
                };
                // Draw even when disabled so enabling renewables does not
                // perturb the other streams (common random numbers).
                let watts = self.renewable_rng.range_f64(0.0, max.as_watts());
                if renewables_on {
                    greencell_units::Power::from_watts(watts) * s.slot
                } else {
                    Energy::ZERO
                }
            })
            .collect();
        let mut grid_connected: Vec<bool> = net
            .topology()
            .nodes()
            .iter()
            .enumerate()
            .map(|(idx, node)| {
                let draw = match s.grid_model {
                    GridModel::Iid => self.grid_rng.chance(s.user_grid_probability),
                    GridModel::Markov { .. } => self.grid_chains[idx].observe(),
                };
                node.kind().is_base_station() || draw
            })
            .collect();
        // Per-session nominal demand (sessions may be heterogeneous),
        // optionally modulated by the per-cell diurnal profile before any
        // stochastic draw so Constant and Poisson share the same mean.
        let n_cells = s.bs_positions.len();
        let session_demand: Vec<Packets> = net
            .sessions()
            .iter()
            .enumerate()
            .map(|(sid, sess)| {
                let mut nominal = (sess.demand() * s.slot).whole_packets(s.packet_size);
                if let Some(profile) = s.diurnal {
                    nominal =
                        profile.scale(nominal, self.slots_run, self.session_cells[sid], n_cells);
                }
                match s.demand_model {
                    crate::DemandModel::Constant => nominal,
                    crate::DemandModel::Poisson => {
                        let poisson = Poisson::new(nominal.count_f64()).expect("non-negative mean");
                        Packets::new(poisson.sample(&mut self.demand_rng))
                    }
                }
            })
            .collect();
        let mut price_multiplier = s.pricing.multiplier(self.slots_run);
        let mut node_available = vec![];
        if let Some(f) = &faults {
            // Drought zeroes the harvest; an observation dropout replaces
            // the lost reading with the conservative one (no renewables,
            // users assumed off-grid) so the controller under-commits.
            if f.drought || f.dropout {
                renewable.iter_mut().for_each(|r| *r = Energy::ZERO);
            }
            if f.dropout {
                for (idx, node) in net.topology().nodes().iter().enumerate() {
                    if !node.kind().is_base_station() {
                        grid_connected[idx] = false;
                    }
                }
            }
            price_multiplier *= f.price_multiplier;
            if f.node_down.iter().any(|&d| d) {
                node_available = f.node_down.iter().map(|&d| !d).collect();
            }
        }
        SlotObservation {
            spectrum: SpectrumState::new(bandwidths),
            renewable,
            grid_connected,
            session_demand,
            price_multiplier,
            node_available,
        }
    }

    /// Advances one slot.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable controller errors.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.step_with_report().map(|_| ())
    }

    /// Advances one slot, returning the controller's full
    /// [`greencell_core::SlotReport`] (drift-plus-penalty diagnostics
    /// included).
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable controller errors.
    pub fn step_with_report(&mut self) -> Result<greencell_core::SlotReport, SimError> {
        let obs = self.observe();
        self.step_with_observation(&obs)
    }

    /// Advances one slot using an externally supplied observation —
    /// trace replay and what-if analysis (e.g. the same weather under a
    /// different controller configuration).
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable controller errors.
    ///
    /// # Panics
    ///
    /// Panics if `obs` has the wrong dimensions for this network.
    pub fn step_with_observation(
        &mut self,
        obs: &SlotObservation,
    ) -> Result<greencell_core::SlotReport, SimError> {
        self.step_with_observation_traced(obs, &mut NoopSink)
    }

    /// [`Simulator::step_with_observation`] with instrumentation: the
    /// controller emits its stage spans and decision gauges into `sink`,
    /// and the engine adds the Fig. 2 per-slot series (cost, grid draw,
    /// backlogs, battery buffers), fault/degradation marks, and the
    /// stability watchdog's trailing slope.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable controller errors.
    ///
    /// # Panics
    ///
    /// Panics if `obs` has the wrong dimensions for this network.
    pub fn step_with_observation_traced(
        &mut self,
        obs: &SlotObservation,
        sink: &mut dyn Sink,
    ) -> Result<greencell_core::SlotReport, SimError> {
        let obs = obs.clone();
        // Battery faults strike the hardware directly, before the
        // controller plans the slot: one-shot capacity fades, then the
        // charge-path state (idempotent per slot, so a window's end
        // restores charging without extra bookkeeping).
        let faults: Option<SlotFaults> = self
            .fault_plan
            .as_ref()
            .and_then(|p| p.slot(self.slots_run))
            .cloned();
        if let Some(f) = &faults {
            for &(node, factor) in &f.fades {
                self.controller
                    .battery_mut(NodeId::from_index(node))
                    .fade_capacity(factor);
            }
            let nodes = self.controller.network().topology().len();
            for i in 0..nodes {
                self.controller
                    .battery_mut(NodeId::from_index(i))
                    .set_charge_blocked(f.charge_blocked);
            }
        }
        if let Some(relaxed) = &mut self.relaxed {
            let cost = relaxed.step(&obs);
            self.metrics.record_relaxed(cost);
        }
        let report = if self.reference {
            self.controller.step_reference(&obs)?
        } else {
            self.controller.step_traced(&obs, sink)?
        };

        let net = self.controller.network();
        let topo = net.topology();
        let sum_backlog = |ids: Vec<NodeId>| -> f64 {
            ids.iter()
                .map(|&i| self.controller.data().node_backlog(i).count_f64())
                .sum()
        };
        let bs_ids: Vec<NodeId> = topo.base_stations().collect();
        let user_ids: Vec<NodeId> = topo.users().collect();
        let backlog_bs = sum_backlog(bs_ids.clone());
        let backlog_users = sum_backlog(user_ids.clone());
        let buffer_bs_kwh: f64 = bs_ids
            .iter()
            .map(|&i| self.controller.battery(i).level().as_kilowatt_hours())
            .sum();
        let buffer_users_wh: f64 = user_ids
            .iter()
            .map(|&i| self.controller.battery(i).level().as_watt_hours())
            .sum();
        self.watchdog.record(
            backlog_bs + backlog_users,
            buffer_bs_kwh + buffer_users_wh / 1000.0,
        );
        self.metrics.record_degradation(
            faults.as_ref().is_some_and(SlotFaults::is_degraded) || !report.degradation.is_empty(),
            report.degradation.len() as u64,
        );
        self.metrics.record_lyapunov(report.lyapunov_after);
        self.metrics.record_slot(
            report.cost,
            report.grid_draw.as_kilowatt_hours(),
            backlog_bs,
            backlog_users,
            buffer_bs_kwh,
            buffer_users_wh,
            report.admitted.count_f64(),
            report.routed.count_f64(),
            report.scheduled_links as f64,
            report.shed_transmissions as u64,
        );
        if sink.enabled() {
            let slot = report.slot;
            for (name, value) in [
                (names::COST, report.cost),
                (names::GRID_KWH, report.grid_draw.as_kilowatt_hours()),
                (names::BACKLOG_BS, backlog_bs),
                (names::BACKLOG_USERS, backlog_users),
                (names::BUFFER_BS_KWH, buffer_bs_kwh),
                (names::BUFFER_USERS_WH, buffer_users_wh),
                (names::WATCHDOG_SLOPE, self.watchdog.trailing_slope()),
            ] {
                sink.record(TraceEvent::Gauge { slot, name, value });
            }
            // Dynamic-network telemetry: emitted only when a sleep or
            // cooperation policy is live, so default runs' traces are
            // byte-identical to before the policies existed.
            if let Some(ns) = self.controller.network_state() {
                sink.record(TraceEvent::Gauge {
                    slot,
                    name: names::ASLEEP_BS,
                    value: ns.asleep_bs_count() as f64,
                });
                sink.record(TraceEvent::Gauge {
                    slot,
                    name: names::TRANSFER_KWH,
                    value: ns.slot_transferred_kwh(),
                });
                if ns.slot_sleep_transitions() > 0 {
                    sink.record(TraceEvent::Mark {
                        slot,
                        name: "bs_sleep",
                    });
                }
                if ns.slot_wake_transitions() > 0 {
                    sink.record(TraceEvent::Mark {
                        slot,
                        name: "bs_wake",
                    });
                }
            }
            if faults.as_ref().is_some_and(SlotFaults::is_degraded) {
                sink.record(TraceEvent::Mark {
                    slot,
                    name: "fault_active",
                });
            }
            if self.watchdog.is_divergent() {
                sink.record(TraceEvent::Mark {
                    slot,
                    name: "watchdog_divergent",
                });
            }
            if !report.degradation.is_empty() {
                sink.record(TraceEvent::Counter {
                    slot,
                    name: "degradation_events",
                    value: report.degradation.len() as u64,
                });
            }
        }
        self.slots_run += 1;
        Ok(report)
    }

    /// [`Simulator::run`] with instrumentation: every slot is stepped
    /// through [`Simulator::step_with_observation_traced`] so the whole
    /// horizon's spans, gauges, and marks land in `sink`.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable controller errors.
    pub fn run_traced(&mut self, sink: &mut dyn Sink) -> Result<&RunMetrics, SimError> {
        while self.slots_run < self.scenario.horizon {
            let obs = self.observe();
            self.step_with_observation_traced(&obs, sink)?;
        }
        self.finalize();
        Ok(&self.metrics)
    }

    /// Runs the whole horizon, returning the collected metrics.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable controller errors.
    pub fn run(&mut self) -> Result<&RunMetrics, SimError> {
        while self.slots_run < self.scenario.horizon {
            self.step()?;
        }
        self.finalize();
        Ok(&self.metrics)
    }

    /// Runs the whole horizon while recording every slot's observation for
    /// later replay via [`Simulator::replay`].
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable controller errors.
    pub fn run_recording(&mut self) -> Result<(RunMetrics, Vec<SlotObservation>), SimError> {
        let mut trace = Vec::with_capacity(self.scenario.horizon);
        while self.slots_run < self.scenario.horizon {
            let obs = self.observe();
            trace.push(obs.clone());
            self.step_with_observation(&obs)?;
        }
        self.finalize();
        Ok((self.metrics.clone(), trace))
    }

    /// Replays a recorded observation trace through this simulator's
    /// controller (one slot per observation, ignoring the scenario's own
    /// random streams and horizon).
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable controller errors.
    pub fn replay(&mut self, trace: &[SlotObservation]) -> Result<&RunMetrics, SimError> {
        for obs in trace {
            self.step_with_observation(obs)?;
        }
        self.finalize();
        Ok(&self.metrics)
    }

    fn finalize(&mut self) {
        let delivered: Vec<u64> = self
            .controller
            .network()
            .sessions()
            .iter()
            .map(|s| self.controller.data().delivered(s.id()).count())
            .collect();
        self.metrics.set_delivered(delivered);
        if let Some(relaxed) = &self.relaxed {
            self.metrics.set_lower_bound(relaxed.bound());
        }
    }

    /// Total delivered packets so far (sum over sessions).
    #[must_use]
    pub fn delivered(&self) -> Packets {
        self.controller
            .network()
            .sessions()
            .iter()
            .map(|s| self.controller.data().delivered(s.id()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Architecture;

    #[test]
    fn tiny_run_completes_and_is_deterministic() {
        let scenario = Scenario::tiny(11);
        let mut a = Simulator::new(&scenario).unwrap();
        let ma = a.run().unwrap().clone();
        let mut b = Simulator::new(&scenario).unwrap();
        let mb = b.run().unwrap().clone();
        assert_eq!(ma, mb);
        assert_eq!(ma.cost_series().len(), scenario.horizon);
    }

    #[test]
    fn traffic_actually_moves() {
        let mut scenario = Scenario::tiny(13);
        scenario.horizon = 30;
        let mut sim = Simulator::new(&scenario).unwrap();
        let m = sim.run().unwrap();
        assert!(
            m.admitted_series().values().iter().sum::<f64>() > 0.0,
            "nothing admitted"
        );
        assert!(
            m.routed_series().values().iter().sum::<f64>() > 0.0,
            "nothing routed"
        );
        assert!(m.delivered() > 0, "nothing delivered");
    }

    #[test]
    fn disabling_renewables_zeroes_harvest_but_keeps_streams() {
        let mut s1 = Scenario::tiny(17);
        s1.architecture = Architecture::Proposed;
        let mut s2 = s1.clone();
        s2.architecture = Architecture::MultiHopNoRenewable;
        let mut a = Simulator::new(&s1).unwrap();
        let mut b = Simulator::new(&s2).unwrap();
        let oa = a.observe();
        let ob = b.observe();
        // Same spectrum and connectivity draws, different renewables.
        assert_eq!(oa.spectrum, ob.spectrum);
        assert_eq!(oa.grid_connected, ob.grid_connected);
        assert!(ob.renewable.iter().all(|&e| e == Energy::ZERO));
        assert!(oa.renewable.iter().any(|&e| e > Energy::ZERO));
    }

    #[test]
    fn lower_bound_tracked_when_requested() {
        let mut scenario = Scenario::tiny(19);
        scenario.track_lower_bound = true;
        scenario.horizon = 10;
        let mut sim = Simulator::new(&scenario).unwrap();
        let m = sim.run().unwrap();
        assert!(m.lower_bound().is_some());
        assert_eq!(m.relaxed_cost_series().len(), 10);
        // Theorem 5: the lower bound sits below the achieved cost.
        assert!(m.lower_bound().unwrap() <= m.average_cost());
    }
}
