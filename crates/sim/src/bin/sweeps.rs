//! Structural sweeps beyond the paper's figures: how the proposed system
//! scales with relay density (users), offered load (sessions), and
//! spectrum supply (bands), plus a multi-seed replication of the paper
//! scenario.
//!
//! ```text
//! cargo run --release -p greencell-sim --bin sweeps [seed] [horizon]
//! ```

use greencell_sim::{experiments, Scenario};

fn print_points(title: &str, xlabel: &str, points: &[experiments::SweepPoint]) {
    println!("# {title}");
    println!(
        "{xlabel:>10} {:>12} {:>12} {:>14} {:>10}",
        "avg cost", "delivered", "peak backlog", "links/slot"
    );
    for p in points {
        println!(
            "{:>10} {:>12.6} {:>12} {:>14.0} {:>10.2}",
            p.x, p.avg_cost, p.delivered, p.peak_backlog, p.mean_scheduled
        );
    }
    println!();
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let horizon: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);

    let mut base = Scenario::paper(seed);
    base.horizon = horizon;

    match experiments::sweep_users(&base, &[5, 10, 20, 40]) {
        Ok(points) => print_points("user-count sweep (relay density)", "users", &points),
        Err(e) => eprintln!("user sweep failed: {e}"),
    }
    match experiments::sweep_sessions(&base, &[2, 5, 10, 15]) {
        Ok(points) => print_points("session-count sweep (offered load)", "sessions", &points),
        Err(e) => eprintln!("session sweep failed: {e}"),
    }
    match experiments::sweep_bands(&base, &[0, 2, 4, 8]) {
        Ok(points) => print_points("extra-band sweep (spectrum supply)", "bands", &points),
        Err(e) => eprintln!("band sweep failed: {e}"),
    }
    match experiments::replicate(&base, &[1, 7, 13, 42, 99]) {
        Ok(rep) => {
            println!("# replication across seeds {:?}", rep.seeds);
            println!(
                "cost {:.6} ± {:.6}; delivered {:.0}; peak backlog {:.0}",
                rep.mean_cost, rep.std_cost, rep.mean_delivered, rep.mean_peak_backlog
            );
        }
        Err(e) => eprintln!("replication failed: {e}"),
    }
}
