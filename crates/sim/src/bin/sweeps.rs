//! Structural sweeps beyond the paper's figures: how the proposed system
//! scales with relay density (users), offered load (sessions), and
//! spectrum supply (bands), plus a multi-seed replication of the paper
//! scenario.
//!
//! ```text
//! cargo run --release -p greencell-sim --bin sweeps [seed] [horizon]
//! ```
//!
//! Every sub-sweep fans its points across `GREENCELL_THREADS` workers
//! (default: all cores) with bit-identical results; the combined per-run
//! telemetry lands in `results/sweeps_telemetry.{json,csv}`.

use greencell_sim::{experiments, sweep, Scenario, SweepOptions, SweepReport};

fn print_points(title: &str, xlabel: &str, points: &[experiments::SweepPoint]) {
    println!("# {title}");
    println!(
        "{xlabel:>10} {:>12} {:>12} {:>14} {:>10}",
        "avg cost", "delivered", "peak backlog", "links/slot"
    );
    for p in points {
        println!(
            "{:>10} {:>12.6} {:>12} {:>14.0} {:>10.2}",
            p.x, p.avg_cost, p.delivered, p.peak_backlog, p.mean_scheduled
        );
    }
    println!();
}

/// Folds a sub-sweep's telemetry into the combined report.
fn absorb(combined: &mut SweepReport, part: SweepReport) {
    combined.outcomes.extend(part.outcomes);
    combined.total_wall += part.total_wall;
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let horizon: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);

    let mut base = Scenario::paper(seed);
    base.horizon = horizon;

    let opts = SweepOptions::from_env();
    eprintln!(
        "sweeps: paper scenario, seed {seed}, horizon {horizon}, {} worker(s)",
        opts.threads
    );
    let mut combined = SweepReport {
        outcomes: Vec::new(),
        threads: opts.threads,
        total_wall: std::time::Duration::ZERO,
    };

    match experiments::sweep_users_with(&base, &[5, 10, 20, 40], &opts) {
        Ok((points, telemetry)) => {
            print_points("user-count sweep (relay density)", "users", &points);
            absorb(&mut combined, telemetry);
        }
        Err(e) => eprintln!("user sweep failed: {e}"),
    }
    match experiments::sweep_sessions_with(&base, &[2, 5, 10, 15], &opts) {
        Ok((points, telemetry)) => {
            print_points("session-count sweep (offered load)", "sessions", &points);
            absorb(&mut combined, telemetry);
        }
        Err(e) => eprintln!("session sweep failed: {e}"),
    }
    match experiments::sweep_bands_with(&base, &[0, 2, 4, 8], &opts) {
        Ok((points, telemetry)) => {
            print_points("extra-band sweep (spectrum supply)", "bands", &points);
            absorb(&mut combined, telemetry);
        }
        Err(e) => eprintln!("band sweep failed: {e}"),
    }
    match experiments::replicate_with(&base, &[1, 7, 13, 42, 99], &opts) {
        Ok((rep, telemetry)) => {
            println!("# replication across seeds {:?}", rep.seeds);
            println!(
                "cost {:.6} ± {:.6}; delivered {:.0}; peak backlog {:.0}",
                rep.mean_cost, rep.std_cost, rep.mean_delivered, rep.mean_peak_backlog
            );
            absorb(&mut combined, telemetry);
        }
        Err(e) => eprintln!("replication failed: {e}"),
    }

    match sweep::write_telemetry(&combined, "sweeps") {
        Ok((json, csv)) => {
            eprintln!(
                "telemetry: {} and {} ({:.2}s total)",
                json.display(),
                csv.display(),
                combined.total_wall.as_secs_f64()
            );
        }
        Err(e) => eprintln!("could not write telemetry: {e}"),
    }
}
