//! Traces a paper-scenario run end to end: runs the S1–S4 pipeline with
//! the structured trace sink on, writes the chrome://tracing JSON
//! (loadable in Perfetto), the byte-stable deterministic event dump, and
//! the Fig. 2 time-series CSV under `results/`, and prints the
//! stage-latency histogram summary.
//!
//! ```text
//! cargo run --release -p greencell-sim --bin trace_run -- \
//!     [--tiny] [--horizon N] [--seed N] [--out DIR] [--workers N] [--check]
//! ```
//!
//! With `--check`, also verifies the determinism contract: the exported
//! chrome-trace JSON parses, and the deterministic trace section is
//! byte-identical between 1 worker and `--workers` (default 4) workers.
//! Exits non-zero on any violation — the CI gate.

use greencell_sim::{check_trace_determinism, write_trace_artifacts, Scenario, SweepPoint};
use greencell_trace::RingSink;

fn main() {
    let mut horizon: usize = 40;
    let mut seed: u64 = 42;
    let mut tiny = false;
    let mut out_dir = String::from("results");
    let mut workers: usize = 4;
    let mut check = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match arg.as_str() {
            "--horizon" => horizon = value("--horizon").parse().expect("invalid --horizon"),
            "--seed" => seed = value("--seed").parse().expect("invalid --seed"),
            "--tiny" => tiny = true,
            "--out" => out_dir = value("--out"),
            "--workers" => workers = value("--workers").parse().expect("invalid --workers"),
            "--check" => check = true,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut scenario = if tiny {
        Scenario::tiny(seed)
    } else {
        Scenario::paper(seed)
    };
    scenario.horizon = horizon;
    let label = if tiny { "tiny" } else { "paper" };
    // A second point exercises the merge path even in the quick run.
    let mut alt = scenario.clone();
    alt.seed = seed.wrapping_add(1);
    let points = vec![
        SweepPoint::new(format!("{label}_seed{seed}"), scenario),
        SweepPoint::new(format!("{label}_seed{}", seed.wrapping_add(1)), alt),
    ];

    eprintln!(
        "trace_run: {label} scenario, horizon {horizon}, seed {seed}, \
         determinism check {}",
        if check {
            format!("on (1 vs {workers} workers)")
        } else {
            "off".to_string()
        }
    );

    let run = if check {
        match check_trace_determinism(&points, workers, RingSink::DEFAULT_CAPACITY) {
            Ok(run) => {
                eprintln!(
                    "determinism check passed: deterministic section byte-identical \
                     at 1 and {workers} workers; chrome trace JSON parses"
                );
                run
            }
            Err(e) => {
                eprintln!("determinism check FAILED: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match greencell_sim::trace_points(
            &points,
            &greencell_sim::SweepOptions::default(),
            RingSink::DEFAULT_CAPACITY,
        ) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("trace run failed: {e}");
                std::process::exit(1);
            }
        }
    };

    match write_trace_artifacts(&run.bundle, &out_dir, label) {
        Ok(paths) => {
            for p in &paths {
                eprintln!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("could not write trace artifacts: {e}");
            std::process::exit(1);
        }
    }

    println!("{}", run.bundle.summary().render());
    for o in &run.report.outcomes {
        println!(
            "{}: avg cost {:.6}, delivered {}, {:.0} slots/s",
            o.label,
            o.metrics.average_cost(),
            o.metrics.delivered(),
            o.telemetry.slots_per_sec
        );
    }
}
