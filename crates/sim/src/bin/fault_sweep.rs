//! Robustness sweep: the paper scenario under injected faults.
//!
//! Runs a fault-free baseline plus four fault scenarios — bursty BS
//! outages, a renewable drought, a grid price spike, and spectrum band
//! loss — through the graceful-degradation controller, and reports how
//! much each disturbance costs and whether the queues stay strongly
//! stable (watchdog verdict).
//!
//! ```text
//! cargo run --release -p greencell-sim --bin fault_sweep [seed] [horizon]
//! ```
//!
//! Scenarios fan across `GREENCELL_THREADS` workers (default: all cores).
//! Wall-clock telemetry lands in `results/fault_sweep_telemetry.{json,csv}`
//! and the deterministic robustness record — byte-identical across worker
//! counts — in `results/fault_sweep_stability.json`.

use greencell_sim::faults::FaultSpec;
use greencell_sim::{run_sweep, sweep, Scenario, SweepOptions, SweepPoint};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let horizon: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);

    let scenarios: Vec<(&str, Option<FaultSpec>)> = vec![
        ("baseline", None),
        ("bs_outage", Some(FaultSpec::bs_outage())),
        (
            "renewable_drought",
            Some(FaultSpec::renewable_drought(horizon / 4, horizon / 2)),
        ),
        (
            "price_spike",
            Some(FaultSpec::price_spike(horizon / 4, horizon / 2, 6.0)),
        ),
        ("band_loss", Some(FaultSpec::band_loss())),
    ];
    let points: Vec<SweepPoint> = scenarios
        .into_iter()
        .map(|(label, faults)| {
            let mut s = Scenario::paper(seed);
            s.horizon = horizon;
            s.faults = faults;
            SweepPoint::new(label, s)
        })
        .collect();

    let opts = SweepOptions::from_env();
    eprintln!(
        "fault_sweep: paper scenario, seed {seed}, horizon {horizon}, {} worker(s)",
        opts.threads
    );
    let report = match run_sweep(&points, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fault_sweep failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{:<20} {:>10} {:>10} {:>8} {:>12} {:>12} {:>10}",
        "scenario", "degraded", "events", "shed", "avg cost", "slope", "verdict"
    );
    let mut all_stable = true;
    for o in &report.outcomes {
        let t = &o.telemetry;
        let w = &t.watchdog;
        all_stable &= w.stable;
        println!(
            "{:<20} {:>10} {:>10} {:>8} {:>12.6} {:>12.3} {:>10}",
            o.label,
            t.degraded_slots,
            t.degradation_events,
            o.metrics.shed(),
            o.metrics.average_cost(),
            w.trailing_slope,
            if w.stable { "stable" } else { "DIVERGENT" },
        );
    }

    match sweep::write_telemetry(&report, "fault_sweep") {
        Ok((json, csv)) => eprintln!("telemetry: {} and {}", json.display(), csv.display()),
        Err(e) => eprintln!("could not write telemetry: {e}"),
    }
    let stability = std::path::Path::new("results").join("fault_sweep_stability.json");
    match report.write_stability_json(&stability) {
        Ok(()) => eprintln!("stability record: {}", stability.display()),
        Err(e) => eprintln!("could not write stability record: {e}"),
    }
    if !all_stable {
        eprintln!("fault_sweep: watchdog flagged divergence");
        std::process::exit(2);
    }
}
