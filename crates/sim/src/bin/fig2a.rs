//! Regenerates Fig. 2(a): upper and lower bounds on the optimal
//! time-averaged energy cost versus the Lyapunov weight `V`.
//!
//! ```text
//! cargo run --release -p greencell-sim --bin fig2a [seed] [horizon] [out_dir]
//! ```
//!
//! With `out_dir`, the rows are also written to `<out_dir>/fig2a.csv`.
//! The `V` points fan across `GREENCELL_THREADS` workers (default: all
//! cores) with bit-identical results; per-run telemetry lands in
//! `results/fig2a_telemetry.{json,csv}`.

use greencell_sim::{experiments, report, sweep, Scenario, SweepOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let horizon: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let out_dir = args.next();

    let mut base = Scenario::paper(seed);
    base.horizon = horizon;
    // The paper sweeps V = 1×10⁵ … 10×10⁵.
    let v_values: Vec<f64> = (1..=10).map(|k| k as f64 * 1e5).collect();

    let opts = SweepOptions::from_env();
    eprintln!(
        "fig2a: paper scenario, seed {seed}, horizon {horizon}, {} V values, {} worker(s)",
        v_values.len(),
        opts.threads
    );
    match experiments::fig2a_with(&base, &v_values, &opts) {
        Ok((rows, telemetry)) => {
            println!("# Fig 2(a) — time-averaged expected energy cost bounds vs V");
            print!("{}", report::bounds_table(&rows));
            let tight = rows
                .windows(2)
                .all(|w| (w[1].upper - w[1].lower) <= (w[0].upper - w[0].lower) + 1e-9);
            println!("# gap monotonically tightening with V: {tight}");
            if let Some(dir) = &out_dir {
                let dir = std::path::Path::new(dir);
                let mut csv =
                    String::from("v,upper_cost,lower_cost,relaxed_cost,gap,upper_psi,lower_psi\n");
                for r in &rows {
                    csv.push_str(&format!(
                        "{},{},{},{},{},{},{}\n",
                        r.v, r.upper, r.lower, r.relaxed_cost, r.gap, r.upper_psi, r.lower_psi
                    ));
                }
                if let Err(e) = std::fs::create_dir_all(dir)
                    .and_then(|()| greencell_sim::write_text_atomic(&dir.join("fig2a.csv"), &csv))
                {
                    eprintln!("could not write CSV to {}: {e}", dir.display());
                } else {
                    eprintln!("wrote {}/fig2a.csv", dir.display());
                }
            }
            match sweep::write_telemetry(&telemetry, "fig2a") {
                Ok((json, csv)) => {
                    eprintln!(
                        "telemetry: {} and {} ({:.2}s total)",
                        json.display(),
                        csv.display(),
                        telemetry.total_wall.as_secs_f64()
                    );
                }
                Err(e) => eprintln!("could not write telemetry: {e}"),
            }
        }
        Err(e) => {
            eprintln!("fig2a failed: {e}");
            std::process::exit(1);
        }
    }
}
