//! Regenerates Fig. 2(f): time-averaged expected energy cost of the four
//! architectures (proposed, multi-hop w/o renewables, one-hop w/
//! renewables, one-hop w/o renewables) at V = 1, 3, 5 ×10⁵ under common
//! random numbers.
//!
//! ```text
//! cargo run --release -p greencell-sim --bin fig2f [seed] [horizon]
//! ```
//!
//! All `architecture × V` cells fan across `GREENCELL_THREADS` workers
//! (default: all cores) with bit-identical results; per-run telemetry
//! lands in `results/fig2f_telemetry.{json,csv}`.

use greencell_sim::{experiments, report, sweep, Scenario, SweepOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let horizon: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);

    let mut base = Scenario::fig2f_calibrated(seed);
    base.horizon = horizon;
    let v_values = [1e5, 3e5, 5e5];

    let opts = SweepOptions::from_env();
    eprintln!(
        "fig2f: paper scenario, seed {seed}, horizon {horizon}, {} worker(s)",
        opts.threads
    );
    match experiments::fig2f_with(&base, &v_values, &opts) {
        Ok((rows, telemetry)) => {
            println!("# Fig 2(f) — time-averaged expected energy cost by architecture");
            print!("{}", report::architecture_table(&rows, &v_values));
            let ours: f64 = rows[0].costs.iter().sum();
            let best_other = rows[1..]
                .iter()
                .map(|r| r.costs.iter().sum::<f64>())
                .fold(f64::INFINITY, f64::min);
            println!(
                "# proposed beats best baseline: {} ({}).",
                ours <= best_other,
                if best_other > 0.0 {
                    format!("ratio {:.3}", ours / best_other)
                } else {
                    "baseline cost is zero".to_string()
                }
            );
            match sweep::write_telemetry(&telemetry, "fig2f") {
                Ok((json, csv)) => {
                    eprintln!(
                        "telemetry: {} and {} ({:.2}s total)",
                        json.display(),
                        csv.display(),
                        telemetry.total_wall.as_secs_f64()
                    );
                }
                Err(e) => eprintln!("could not write telemetry: {e}"),
            }
        }
        Err(e) => {
            eprintln!("fig2f failed: {e}");
            std::process::exit(1);
        }
    }
}
