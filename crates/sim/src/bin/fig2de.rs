//! Regenerates Fig. 2(d) and 2(e): total energy-buffer levels of base
//! stations (d, kWh) and mobile users (e, Wh) over time, for V = 1…5 ×10⁵.
//!
//! ```text
//! cargo run --release -p greencell-sim --bin fig2de [seed] [horizon] [out_dir]
//! ```
//!
//! With `out_dir`, the two CSV blocks are also written to
//! `<out_dir>/fig2d.csv` and `<out_dir>/fig2e.csv`.
//! The `V` points fan across `GREENCELL_THREADS` workers (default: all
//! cores) with bit-identical results; per-run telemetry lands in
//! `results/fig2de_telemetry.{json,csv}`.

use greencell_sim::{experiments, report, sweep, Scenario, SweepOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let horizon: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let out_dir = args.next();

    let mut base = Scenario::paper(seed);
    base.horizon = horizon;
    // Start buffers empty so the fill-up dynamics of Fig. 2(d)/(e) show.
    base.initial_battery_fraction = 0.0;
    let v_values: Vec<f64> = (1..=5).map(|k| k as f64 * 1e5).collect();

    let opts = SweepOptions::from_env();
    eprintln!(
        "fig2de: paper scenario, seed {seed}, horizon {horizon}, {} worker(s)",
        opts.threads
    );
    match experiments::fig2de_with(&base, &v_values, &opts) {
        Ok((rows, telemetry)) => {
            let (bs, users) = match report::buffer_csv(&rows) {
                Ok(csvs) => csvs,
                Err(e) => {
                    eprintln!("fig2de failed: {e}");
                    std::process::exit(1);
                }
            };
            println!("# Fig 2(d) — total energy buffer size of base stations (kWh)");
            print!("{bs}");
            println!("# Fig 2(e) — total energy buffer size of mobile users (Wh)");
            print!("{users}");
            if let Some(dir) = &out_dir {
                let dir = std::path::Path::new(dir);
                if let Err(e) = std::fs::create_dir_all(dir)
                    .and_then(|()| greencell_sim::write_text_atomic(&dir.join("fig2d.csv"), &bs))
                    .and_then(|()| greencell_sim::write_text_atomic(&dir.join("fig2e.csv"), &users))
                {
                    eprintln!("could not write CSVs to {}: {e}", dir.display());
                } else {
                    eprintln!("wrote {}/fig2d.csv and fig2e.csv", dir.display());
                }
            }
            for r in &rows {
                println!(
                    "# V={:.0e}: BS final={:.3} kWh; users final={:.1} Wh",
                    r.v,
                    r.bs_kwh.last().unwrap_or(0.0),
                    r.users_wh.last().unwrap_or(0.0),
                );
                println!("#   BS    {}", report::sparkline(&r.bs_kwh));
                println!("#   users {}", report::sparkline(&r.users_wh));
            }
            match sweep::write_telemetry(&telemetry, "fig2de") {
                Ok((json, csv)) => {
                    eprintln!(
                        "telemetry: {} and {} ({:.2}s total)",
                        json.display(),
                        csv.display(),
                        telemetry.total_wall.as_secs_f64()
                    );
                }
                Err(e) => eprintln!("could not write telemetry: {e}"),
            }
        }
        Err(e) => {
            eprintln!("fig2de failed: {e}");
            std::process::exit(1);
        }
    }
}
