//! Standalone distributed-sweep worker process.
//!
//! Claims points from an on-disk work queue (see [`greencell_sim::distrib`])
//! until every manifest point has a result, then exits. The `greencell`
//! CLI's hidden `sweep-worker` mode is the same loop; this binary exists so
//! the sim crate's integration tests (and `perf_baseline`) can spawn
//! workers without depending on the CLI crate.
//!
//! ```text
//! sweep_worker --dir <work_dir> --id <worker_id> \
//!              [--stale-after-ms <ms>] [--poll-ms <ms>]
//! ```

use std::path::PathBuf;
use std::time::Duration;

struct Args {
    dir: PathBuf,
    id: String,
    stale_after: Duration,
    poll: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut dir = None;
    let mut id = None;
    let mut stale_after = Duration::from_secs(30);
    let mut poll = Duration::from_millis(25);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--id" => id = Some(value("--id")?),
            "--stale-after-ms" => {
                let ms: u64 = value("--stale-after-ms")?
                    .parse()
                    .map_err(|e| format!("--stale-after-ms: {e}"))?;
                stale_after = Duration::from_millis(ms);
            }
            "--poll-ms" => {
                let ms: u64 = value("--poll-ms")?
                    .parse()
                    .map_err(|e| format!("--poll-ms: {e}"))?;
                poll = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args {
        dir: dir.ok_or("--dir is required")?,
        id: id.ok_or("--id is required")?,
        stale_after,
        poll,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sweep_worker: {e}");
            std::process::exit(2);
        }
    };
    match greencell_sim::run_worker(&args.dir, &args.id, args.stale_after, args.poll) {
        Ok(stats) => {
            eprintln!(
                "sweep_worker {}: claimed {} computed {} steals {} requeued {}",
                args.id, stats.claimed, stats.computed, stats.steals, stats.requeued
            );
        }
        Err(e) => {
            eprintln!("sweep_worker {}: {e}", args.id);
            std::process::exit(1);
        }
    }
}
