//! Regenerates Fig. 2(b) and 2(c): total data-queue backlog of base
//! stations (b) and mobile users (c) over time, for V = 1…5 ×10⁵.
//!
//! ```text
//! cargo run --release -p greencell-sim --bin fig2bc [seed] [horizon] [out_dir]
//! ```
//!
//! With `out_dir`, the two CSV blocks are also written to
//! `<out_dir>/fig2b.csv` and `<out_dir>/fig2c.csv`.
//! The `V` points fan across `GREENCELL_THREADS` workers (default: all
//! cores) with bit-identical results; per-run telemetry lands in
//! `results/fig2bc_telemetry.{json,csv}`.

use greencell_sim::{experiments, report, sweep, Scenario, SweepOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let horizon: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let out_dir = args.next();

    let mut base = Scenario::paper(seed);
    base.horizon = horizon;
    let v_values: Vec<f64> = (1..=5).map(|k| k as f64 * 1e5).collect();

    let opts = SweepOptions::from_env();
    eprintln!(
        "fig2bc: paper scenario, seed {seed}, horizon {horizon}, {} worker(s)",
        opts.threads
    );
    match experiments::fig2bc_with(&base, &v_values, &opts) {
        Ok((rows, telemetry)) => {
            let (bs, users) = match report::backlog_csv(&rows) {
                Ok(csvs) => csvs,
                Err(e) => {
                    eprintln!("fig2bc failed: {e}");
                    std::process::exit(1);
                }
            };
            println!("# Fig 2(b) — total data queue backlog of base stations (packets)");
            print!("{bs}");
            println!("# Fig 2(c) — total data queue backlog of mobile users (packets)");
            print!("{users}");
            if let Some(dir) = &out_dir {
                let dir = std::path::Path::new(dir);
                if let Err(e) = std::fs::create_dir_all(dir)
                    .and_then(|()| greencell_sim::write_text_atomic(&dir.join("fig2b.csv"), &bs))
                    .and_then(|()| greencell_sim::write_text_atomic(&dir.join("fig2c.csv"), &users))
                {
                    eprintln!("could not write CSVs to {}: {e}", dir.display());
                } else {
                    eprintln!("wrote {}/fig2b.csv and fig2c.csv", dir.display());
                }
            }
            for r in &rows {
                println!(
                    "# V={:.0e}: BS final={:.0} peak={:.0}; users final={:.0} peak={:.0}",
                    r.v,
                    r.bs.last().unwrap_or(0.0),
                    r.bs.max().unwrap_or(0.0),
                    r.users.last().unwrap_or(0.0),
                    r.users.max().unwrap_or(0.0),
                );
                println!("#   BS    {}", report::sparkline(&r.bs));
                println!("#   users {}", report::sparkline(&r.users));
            }
            match sweep::write_telemetry(&telemetry, "fig2bc") {
                Ok((json, csv)) => {
                    eprintln!(
                        "telemetry: {} and {} ({:.2}s total)",
                        json.display(),
                        csv.display(),
                        telemetry.total_wall.as_secs_f64()
                    );
                }
                Err(e) => eprintln!("could not write telemetry: {e}"),
            }
        }
        Err(e) => {
            eprintln!("fig2bc failed: {e}");
            std::process::exit(1);
        }
    }
}
