//! Deterministic parallel sweep engine.
//!
//! Every figure reproduction and structural sweep is an embarrassingly
//! parallel set of independent scenario points. This module fans those
//! points across [`std::thread::scope`] workers (std-only, no external
//! dependencies) while keeping results *bit-identical* regardless of
//! thread count or scheduling order:
//!
//! * each point owns a self-contained [`Scenario`] whose seed fully
//!   determines its random streams — workers share no mutable state;
//! * [`derive_point_seed`] gives replications a per-point seed mixed from
//!   `(master_seed, point_index)`, so a point keeps its seed no matter
//!   where it sits in the submission list;
//! * outcomes are collected into slots indexed by submission order, so the
//!   returned vector never depends on completion order.
//!
//! Per-run telemetry (wall-clock, slots/sec, S1–S4 controller-stage
//! timings, final queue/battery summaries) rides along with each point and
//! serializes to JSON or CSV under `results/` via
//! [`SweepReport::write_json`] / [`SweepReport::write_csv`].

use crate::faults::WatchdogReport;
use crate::{RunMetrics, Scenario, SimError, Simulator};
use greencell_core::StageTimings;
use greencell_trace::{RingSink, TraceBundle, Track};
use std::num::NonZeroUsize;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One point of a sweep: a label for reports plus the scenario to run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable point label (e.g. `"V=1e5"` or `"seed=42"`).
    pub label: String,
    /// The complete scenario to simulate.
    pub scenario: Scenario,
}

impl SweepPoint {
    /// Convenience constructor.
    #[must_use]
    pub fn new(label: impl Into<String>, scenario: Scenario) -> Self {
        Self {
            label: label.into(),
            scenario,
        }
    }
}

/// Derives the RNG seed for sweep point `point_index` under `master_seed`.
///
/// SplitMix64-style finalizer over the pair, so nearby indices map to
/// statistically independent seeds. The mapping depends only on the two
/// arguments — never on thread count, scheduling, or the other points —
/// which is what makes reseeded sweeps reproducible and stable under
/// point reordering.
#[must_use]
pub fn derive_point_seed(master_seed: u64, point_index: u64) -> u64 {
    let mut z = master_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(point_index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a sweep is executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads to fan points across (≥ 1).
    pub threads: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

impl SweepOptions {
    /// One worker — the serial baseline.
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A fixed worker count (clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Worker count from `GREENCELL_THREADS`, falling back to the host's
    /// available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var("GREENCELL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Self { threads }
    }
}

/// Telemetry for one completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// Slots simulated.
    pub slots: usize,
    /// Wall-clock for the whole run (construction + all slots).
    pub wall: Duration,
    /// Simulated slots per wall-clock second.
    pub slots_per_sec: f64,
    /// Cumulative S1–S4 controller-stage timings.
    pub stages: StageTimings,
    /// Final total BS data backlog (packets).
    pub final_backlog_bs: f64,
    /// Final total user data backlog (packets).
    pub final_backlog_users: f64,
    /// Final total BS battery level (kWh).
    pub final_buffer_bs_kwh: f64,
    /// Final total user battery level (Wh).
    pub final_buffer_users_wh: f64,
    /// Slots where a fault was active or the controller degraded service.
    pub degraded_slots: u64,
    /// Total controller degradation events across the run.
    pub degradation_events: u64,
    /// The strong-stability watchdog's end-of-run verdict.
    pub watchdog: WatchdogReport,
}

/// Everything one sweep point produced.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// The point's label, as submitted.
    pub label: String,
    /// The scenario seed the run actually used.
    pub seed: u64,
    /// The full metric series (identical to a serial run of the same
    /// scenario — this is what the determinism test compares).
    pub metrics: RunMetrics,
    /// Wall-clock and stage-timing telemetry (excluded from determinism
    /// comparisons: timing is inherently run-dependent).
    pub telemetry: RunTelemetry,
    /// Lemma 1's constant `B` for this point's controller.
    pub penalty_b: f64,
    /// The relaxed controller's average admissions, when tracked.
    pub relaxed_admitted: Option<f64>,
}

/// The result of a sweep: per-point outcomes in submission order plus
/// aggregate execution facts.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One outcome per submitted point, in submission order.
    pub outcomes: Vec<PointOutcome>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock for the whole sweep.
    pub total_wall: Duration,
}

/// Runs one scenario and packages its outcome (the per-point worker body).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_point(label: &str, scenario: &Scenario) -> Result<PointOutcome, SimError> {
    let start = Instant::now();
    let mut sim = Simulator::new(scenario)?;
    let metrics = sim.run()?.clone();
    Ok(package_outcome(
        label,
        scenario,
        &sim,
        metrics,
        start.elapsed(),
    ))
}

/// Like [`run_point`], but runs the scenario with a per-point
/// [`RingSink`] of `capacity` events and returns the recorded track
/// alongside the outcome.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_point_traced(
    label: &str,
    scenario: &Scenario,
    capacity: usize,
) -> Result<(PointOutcome, Track), SimError> {
    let mut sink = RingSink::new(capacity);
    let start = Instant::now();
    let mut sim = Simulator::new(scenario)?;
    let metrics = sim.run_traced(&mut sink)?.clone();
    let outcome = package_outcome(label, scenario, &sim, metrics, start.elapsed());
    let track = Track {
        label: label.to_string(),
        dropped: sink.dropped(),
        events: sink.into_events(),
    };
    Ok((outcome, track))
}

/// Packages a finished run into a [`PointOutcome`] (shared by the plain
/// and traced point runners).
fn package_outcome(
    label: &str,
    scenario: &Scenario,
    sim: &Simulator,
    metrics: RunMetrics,
    wall: Duration,
) -> PointOutcome {
    let telemetry = RunTelemetry {
        slots: scenario.horizon,
        wall,
        slots_per_sec: scenario.horizon as f64 / wall.as_secs_f64().max(1e-12),
        stages: sim.controller().stage_timings(),
        final_backlog_bs: metrics.backlog_bs_series().last().unwrap_or(0.0),
        final_backlog_users: metrics.backlog_users_series().last().unwrap_or(0.0),
        final_buffer_bs_kwh: metrics.buffer_bs_series().last().unwrap_or(0.0),
        final_buffer_users_wh: metrics.buffer_users_series().last().unwrap_or(0.0),
        degraded_slots: metrics.degraded_slots(),
        degradation_events: metrics.degradation_events(),
        watchdog: sim.watchdog().report(),
    };
    PointOutcome {
        label: label.to_string(),
        seed: scenario.seed,
        metrics,
        telemetry,
        penalty_b: sim.controller().penalty_b(),
        relaxed_admitted: sim.relaxed_average_admitted(),
    }
}

/// Fans `items` across `threads` scoped workers, applying `f` to each and
/// returning the results in submission order.
///
/// Work is claimed through an atomic cursor, so load-imbalanced points
/// never idle a worker; each result lands in its submission-index slot, so
/// the output order is independent of completion order.
pub(crate) fn parallel_map_ordered<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n);
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work mutex poisoned")
                    .take()
                    .expect("each index claimed once");
                let result = f(i, item);
                *slots[i].lock().expect("slot mutex poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot mutex poisoned")
                .expect("all slots filled inside the scope")
        })
        .collect()
}

/// Runs every point, fanning across `opts.threads` workers.
///
/// Outcomes are returned in submission order and are bit-identical across
/// worker counts: every point's randomness is sealed inside its own
/// scenario seed.
///
/// # Errors
///
/// Returns the first (by submission order) point failure.
pub fn run_sweep(points: &[SweepPoint], opts: &SweepOptions) -> Result<SweepReport, SimError> {
    let start = Instant::now();
    let results = parallel_map_ordered(points.to_vec(), opts.threads, |_, point| {
        run_point(&point.label, &point.scenario)
    });
    let mut outcomes = Vec::with_capacity(results.len());
    for result in results {
        outcomes.push(result?);
    }
    Ok(SweepReport {
        outcomes,
        threads: opts.threads,
        total_wall: start.elapsed(),
    })
}

/// Like [`run_sweep`], but every worker traces its points into its own
/// [`RingSink`] of `capacity` events. The per-worker sinks are merged
/// into a [`TraceBundle`] **in submission (point) order**, never in
/// completion order — so the bundle's deterministic section
/// ([`TraceBundle::deterministic_json`]) is byte-identical at any worker
/// count, while the span/profile section rides along for Perfetto.
///
/// # Errors
///
/// Returns the first (by submission order) point failure.
pub fn run_sweep_traced(
    points: &[SweepPoint],
    opts: &SweepOptions,
    capacity: usize,
) -> Result<(SweepReport, TraceBundle), SimError> {
    let start = Instant::now();
    let results = parallel_map_ordered(points.to_vec(), opts.threads, |_, point| {
        run_point_traced(&point.label, &point.scenario, capacity)
    });
    let mut outcomes = Vec::with_capacity(results.len());
    let mut bundle = TraceBundle::new();
    for result in results {
        let (outcome, track) = result?;
        outcomes.push(outcome);
        bundle.push(track);
    }
    Ok((
        SweepReport {
            outcomes,
            threads: opts.threads,
            total_wall: start.elapsed(),
        },
        bundle,
    ))
}

/// Like [`run_sweep`], but first reseeds each point with
/// [`derive_point_seed`]`(master_seed, index)` — the replication mode,
/// where every point should see an independent sample path.
///
/// # Errors
///
/// Returns the first (by submission order) point failure.
pub fn run_sweep_reseeded(
    master_seed: u64,
    points: &[SweepPoint],
    opts: &SweepOptions,
) -> Result<SweepReport, SimError> {
    let reseeded: Vec<SweepPoint> = points
        .iter()
        .enumerate()
        .map(|(idx, p)| {
            let mut point = p.clone();
            point.scenario.seed = derive_point_seed(master_seed, idx as u64);
            point
        })
        .collect();
    run_sweep(&reseeded, opts)
}

// ---------------------------------------------------------------------------
// Telemetry serialization (hand-rolled: the workspace is dependency-free).
// ---------------------------------------------------------------------------

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a finite f64 for JSON (JSON has no NaN/Inf literals).
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

impl SweepReport {
    /// The telemetry rows as JSON (one object per point under `"points"`).
    #[must_use]
    pub fn telemetry_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"total_wall_s\": {},\n",
            json_f64(self.total_wall.as_secs_f64())
        ));
        out.push_str("  \"points\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let t = &o.telemetry;
            let s = &t.stages;
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"seed\": {}, \"slots\": {}, \
                 \"wall_s\": {}, \"slots_per_sec\": {}, \
                 \"s1_s\": {}, \"s2_s\": {}, \"s3_s\": {}, \"s4_s\": {}, \
                 \"avg_cost\": {}, \"delivered\": {}, \"shed\": {}, \
                 \"final_backlog_bs\": {}, \"final_backlog_users\": {}, \
                 \"final_buffer_bs_kwh\": {}, \"final_buffer_users_wh\": {}, \
                 \"degraded_slots\": {}, \"degradation_events\": {}, \
                 \"watchdog_slope\": {}, \"watchdog_stable\": {}}}{}\n",
                json_escape(&o.label),
                o.seed,
                t.slots,
                json_f64(t.wall.as_secs_f64()),
                json_f64(t.slots_per_sec),
                json_f64(s.s1.as_secs_f64()),
                json_f64(s.s2.as_secs_f64()),
                json_f64(s.s3.as_secs_f64()),
                json_f64(s.s4.as_secs_f64()),
                json_f64(o.metrics.average_cost()),
                o.metrics.delivered(),
                o.metrics.shed(),
                json_f64(t.final_backlog_bs),
                json_f64(t.final_backlog_users),
                json_f64(t.final_buffer_bs_kwh),
                json_f64(t.final_buffer_users_wh),
                t.degraded_slots,
                t.degradation_events,
                json_f64(t.watchdog.trailing_slope),
                t.watchdog.stable,
                if i + 1 < self.outcomes.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The telemetry rows as CSV (header + one row per point).
    #[must_use]
    pub fn telemetry_csv(&self) -> String {
        let mut out = String::from(
            "label,seed,slots,wall_s,slots_per_sec,s1_s,s2_s,s3_s,s4_s,\
             avg_cost,delivered,shed,final_backlog_bs,final_backlog_users,\
             final_buffer_bs_kwh,final_buffer_users_wh,\
             degraded_slots,degradation_events,watchdog_slope,watchdog_stable\n",
        );
        for o in &self.outcomes {
            let t = &o.telemetry;
            let s = &t.stages;
            let label = if o.label.contains(',') || o.label.contains('"') {
                format!("\"{}\"", o.label.replace('"', "\"\""))
            } else {
                o.label.clone()
            };
            out.push_str(&format!(
                "{label},{},{},{:.6},{:.2},{:.6},{:.6},{:.6},{:.6},{:.9},{},{},{:.3},{:.3},{:.6},{:.6},{},{},{:.6},{}\n",
                o.seed,
                t.slots,
                t.wall.as_secs_f64(),
                t.slots_per_sec,
                s.s1.as_secs_f64(),
                s.s2.as_secs_f64(),
                s.s3.as_secs_f64(),
                s.s4.as_secs_f64(),
                o.metrics.average_cost(),
                o.metrics.delivered(),
                o.metrics.shed(),
                t.final_backlog_bs,
                t.final_backlog_users,
                t.final_buffer_bs_kwh,
                t.final_buffer_users_wh,
                t.degraded_slots,
                t.degradation_events,
                t.watchdog.trailing_slope,
                t.watchdog.stable,
            ));
        }
        out
    }

    /// The *deterministic* robustness telemetry as JSON: everything
    /// wall-clock-dependent (timings, throughput) is excluded, so two runs
    /// of the same seeded fault plan produce byte-identical output
    /// regardless of worker count — the replay/audit artifact.
    #[must_use]
    pub fn stability_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"points\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let t = &o.telemetry;
            let w = &t.watchdog;
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"seed\": {}, \"slots\": {}, \
                 \"avg_cost\": {}, \"delivered\": {}, \"shed\": {}, \
                 \"degraded_slots\": {}, \"degradation_events\": {}, \
                 \"final_backlog_bs\": {}, \"final_backlog_users\": {}, \
                 \"watchdog\": {{\"trailing_slope\": {}, \"peak_backlog\": {}, \
                 \"final_backlog\": {}, \"battery_floor_kwh\": {}, \
                 \"divergent_slots\": {}, \"stable\": {}}}}}{}\n",
                json_escape(&o.label),
                o.seed,
                t.slots,
                json_f64(o.metrics.average_cost()),
                o.metrics.delivered(),
                o.metrics.shed(),
                t.degraded_slots,
                t.degradation_events,
                json_f64(t.final_backlog_bs),
                json_f64(t.final_backlog_users),
                json_f64(w.trailing_slope),
                json_f64(w.peak_backlog),
                json_f64(w.final_backlog),
                json_f64(w.battery_floor_kwh),
                w.divergent_slots,
                w.stable,
                if i + 1 < self.outcomes.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`SweepReport::telemetry_json`] to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on I/O failure.
    pub fn write_json(&self, path: impl AsRef<Path>) -> Result<(), SimError> {
        write_text(path.as_ref(), &self.telemetry_json())
    }

    /// Writes [`SweepReport::telemetry_csv`] to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on I/O failure.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<(), SimError> {
        write_text(path.as_ref(), &self.telemetry_csv())
    }

    /// Writes [`SweepReport::stability_json`] to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on I/O failure.
    pub fn write_stability_json(&self, path: impl AsRef<Path>) -> Result<(), SimError> {
        write_text(path.as_ref(), &self.stability_json())
    }
}

/// Writes a report's telemetry to `results/<stem>_telemetry.json` and
/// `results/<stem>_telemetry.csv`, returning the two paths.
///
/// # Errors
///
/// Returns [`SimError::Io`] on I/O failure.
pub fn write_telemetry(
    report: &SweepReport,
    stem: &str,
) -> Result<(std::path::PathBuf, std::path::PathBuf), SimError> {
    let dir = Path::new("results");
    let json = dir.join(format!("{stem}_telemetry.json"));
    let csv = dir.join(format!("{stem}_telemetry.csv"));
    report.write_json(&json)?;
    report.write_csv(&csv)?;
    Ok((json, csv))
}

pub(crate) fn write_text(path: &Path, text: &str) -> Result<(), SimError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| SimError::Io(format!("{}: {e}", parent.display())))?;
        }
    }
    crate::fsio::write_text_atomic(path, text)
        .map_err(|e| SimError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| SweepPoint::new(format!("p{i}"), Scenario::tiny(100 + i as u64)))
            .collect()
    }

    #[test]
    fn point_seeds_are_stable_under_reordering() {
        // A point's derived seed depends only on (master, its index key),
        // never on the surrounding list: run the same points in two orders
        // and each label must keep its seed and its metrics.
        let master = 7;
        let points = tiny_points(4);
        let forward = run_sweep_reseeded(master, &points, &SweepOptions::serial()).unwrap();
        let mut reordered = points.clone();
        reordered.swap(0, 3);
        reordered.swap(1, 2);
        let backward = run_sweep_reseeded(master, &reordered, &SweepOptions::serial()).unwrap();
        for (idx, fwd) in forward.outcomes.iter().enumerate() {
            assert_eq!(fwd.seed, derive_point_seed(master, idx as u64));
        }
        // Index 0 forward and index 3 backward hold the same spec; their
        // seeds differ (different index keys) but both are the documented
        // function of (master, index).
        assert_eq!(backward.outcomes[3].seed, derive_point_seed(master, 3));
        // Distinct indices get distinct seeds.
        let mut seeds: Vec<u64> = forward.outcomes.iter().map(|o| o.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn sweep_outcomes_keep_submission_order() {
        let points = tiny_points(5);
        let report = run_sweep(&points, &SweepOptions::with_threads(3)).unwrap();
        let labels: Vec<&str> = report.outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels, ["p0", "p1", "p2", "p3", "p4"]);
    }

    #[test]
    fn telemetry_serializes_every_point() {
        let points = tiny_points(2);
        let report = run_sweep(&points, &SweepOptions::serial()).unwrap();
        let json = report.telemetry_json();
        assert!(json.contains("\"label\": \"p0\""));
        assert!(json.contains("\"s4_s\""));
        let csv = report.telemetry_csv();
        assert_eq!(csv.lines().count(), 3); // header + 2 rows
        assert!(csv.starts_with("label,seed,slots"));
    }

    #[test]
    fn empty_sweep_is_fine() {
        let report = run_sweep(&[], &SweepOptions::with_threads(4)).unwrap();
        assert!(report.outcomes.is_empty());
    }
}
