//! Deterministic fault injection and the strong-stability watchdog.
//!
//! A [`FaultSpec`] describes *which* failures can strike a run — base
//! stations and users dropping out under a sticky Markov on-off process,
//! licensed-spectrum bands disappearing, renewable droughts, battery
//! capacity fade and charge-path failures, grid price spikes, and
//! observation dropouts. [`FaultPlan::generate`] expands the spec into a
//! per-slot schedule up front from a dedicated RNG stream, so a plan is
//! fully determined by `(seed, spec, horizon)` and two runs of the same
//! plan — serial, parallel, or replayed — see byte-identical faults.
//!
//! The [`StabilityWatchdog`] is the other half of the robustness story: it
//! watches the total data backlog's windowed least-squares slope and the
//! fleet battery floor, flags divergence while a fault holds the network
//! down, and verifies the queues re-stabilize (slope back under threshold)
//! once the fault clears — the empirical counterpart of the paper's
//! strong-stability guarantee (Theorem 3) under disturbances the theory
//! does not model.

use greencell_stochastic::{MarkovOnOff, Process, Rng};

/// Which nodes a Markov outage process can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutageScope {
    /// Only base stations fail (tower power loss, backhaul cut).
    #[default]
    BaseStations,
    /// Only users fail (device churn).
    Users,
    /// Any node can fail.
    All,
}

/// A sticky Markov on-off failure process (`up` is the healthy state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovFault {
    /// `P(up → up)` per slot.
    pub stay_up: f64,
    /// `P(down → down)` per slot — outage burstiness.
    pub stay_down: f64,
}

/// A half-open window of slots `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotWindow {
    /// First affected slot.
    pub start: usize,
    /// One past the last affected slot.
    pub end: usize,
}

impl SlotWindow {
    /// Creates a window; `start <= end` is required.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "fault window [{start}, {end}) is inverted");
        Self { start, end }
    }

    /// Whether slot `t` falls inside the window.
    #[must_use]
    pub fn contains(&self, t: usize) -> bool {
        (self.start..self.end).contains(&t)
    }
}

/// A grid price spike: the tariff is multiplied by `multiplier` inside the
/// window (on top of any scenario-level time-of-use pricing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceSpike {
    /// Affected slots.
    pub window: SlotWindow,
    /// Extra price multiplier (≥ 1 for a spike).
    pub multiplier: f64,
}

/// A one-shot battery capacity fade: at `slot`, node `node`'s battery
/// capacity and charge/discharge limits shrink to `factor` of their
/// current values (cell aging, a dead pack segment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadeEvent {
    /// The slot the fade strikes.
    pub slot: usize,
    /// The affected node index.
    pub node: usize,
    /// Capacity retention factor in `(0, 1]`.
    pub factor: f64,
}

/// Everything that can go wrong in a run. The default is fault-free.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Node outages as a per-node Markov on-off process.
    pub node_outage: Option<MarkovFault>,
    /// Which nodes [`FaultSpec::node_outage`] can strike.
    pub outage_scope: OutageScope,
    /// Loss of the *random* spectrum bands as a per-band Markov process.
    /// The cellular control band (index 0) is licensed and never lost, so
    /// the network keeps a minimal control path.
    pub band_loss: Option<MarkovFault>,
    /// Renewable drought windows: harvest is zero for every node inside.
    pub droughts: Vec<SlotWindow>,
    /// Grid price spikes.
    pub price_spikes: Vec<PriceSpike>,
    /// Charge-path failure windows: no battery may charge inside (the
    /// inverter between source and storage is down; discharge still works).
    pub charge_block: Vec<SlotWindow>,
    /// One-shot battery capacity fades.
    pub battery_fade: Vec<FadeEvent>,
    /// Per-slot probability that the controller's environmental
    /// observation is lost. The simulator substitutes the conservative
    /// reading — zero renewables, users grid-disconnected — so the
    /// controller under-commits rather than over-commits.
    pub dropout_probability: f64,
}

impl FaultSpec {
    /// Bursty base-station outages (the acceptance sweep's first scenario).
    #[must_use]
    pub fn bs_outage() -> Self {
        Self {
            node_outage: Some(MarkovFault {
                stay_up: 0.9,
                stay_down: 0.6,
            }),
            outage_scope: OutageScope::BaseStations,
            ..Self::default()
        }
    }

    /// A renewable drought covering `[start, end)`.
    #[must_use]
    pub fn renewable_drought(start: usize, end: usize) -> Self {
        Self {
            droughts: vec![SlotWindow::new(start, end)],
            ..Self::default()
        }
    }

    /// A grid price spike of `multiplier` covering `[start, end)`.
    #[must_use]
    pub fn price_spike(start: usize, end: usize, multiplier: f64) -> Self {
        Self {
            price_spikes: vec![PriceSpike {
                window: SlotWindow::new(start, end),
                multiplier,
            }],
            ..Self::default()
        }
    }

    /// Bursty loss of the random spectrum bands.
    #[must_use]
    pub fn band_loss() -> Self {
        Self {
            band_loss: Some(MarkovFault {
                stay_up: 0.85,
                stay_down: 0.5,
            }),
            ..Self::default()
        }
    }

    /// Everything at once, with windows scaled to `horizon` — the chaos
    /// proptests' workload.
    #[must_use]
    pub fn chaos(horizon: usize) -> Self {
        let h = horizon.max(4);
        Self {
            node_outage: Some(MarkovFault {
                stay_up: 0.92,
                stay_down: 0.5,
            }),
            outage_scope: OutageScope::All,
            band_loss: Some(MarkovFault {
                stay_up: 0.9,
                stay_down: 0.5,
            }),
            droughts: vec![SlotWindow::new(h / 4, h / 2)],
            price_spikes: vec![PriceSpike {
                window: SlotWindow::new(h / 2, 3 * h / 4),
                multiplier: 4.0,
            }],
            charge_block: vec![SlotWindow::new(h / 3, 2 * h / 3)],
            battery_fade: vec![FadeEvent {
                slot: h / 3,
                node: 0,
                factor: 0.7,
            }],
            dropout_probability: 0.1,
        }
    }

    /// The documented CLI fault presets, in the order the usage text
    /// lists them — the single source of truth the error message below
    /// and the CLI share.
    pub const PRESETS: [&'static str; 5] =
        ["bs-outage", "drought", "price-spike", "band-loss", "chaos"];

    /// Resolves a named CLI fault preset, scaling windowed presets
    /// (drought, price spike, chaos) to `horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] naming the unknown
    /// preset and enumerating the valid ones — the only five names the
    /// `--faults` flag documents.
    pub fn from_preset(name: &str, horizon: usize) -> Result<Self, crate::SimError> {
        match name {
            "bs-outage" => Ok(Self::bs_outage()),
            "drought" => Ok(Self::renewable_drought(horizon / 4, horizon / 2)),
            "price-spike" => Ok(Self::price_spike(horizon / 4, horizon / 2, 6.0)),
            "band-loss" => Ok(Self::band_loss()),
            "chaos" => Ok(Self::chaos(horizon)),
            other => Err(crate::SimError::InvalidConfig {
                detail: format!(
                    "unknown fault preset: {other}; valid presets: {}",
                    Self::PRESETS.join(", ")
                ),
            }),
        }
    }

    /// Whether the spec injects anything at all.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.node_outage.is_none()
            && self.band_loss.is_none()
            && self.droughts.is_empty()
            && self.price_spikes.is_empty()
            && self.charge_block.is_empty()
            && self.battery_fade.is_empty()
            && self.dropout_probability <= 0.0
    }
}

/// The faults striking one slot (all fields healthy by default).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotFaults {
    /// Per-node outage flags (empty ⇒ every node up).
    pub node_down: Vec<bool>,
    /// Per-band loss flags (empty ⇒ every band up; index 0 never set).
    pub band_down: Vec<bool>,
    /// Renewable drought in effect.
    pub drought: bool,
    /// Extra grid price multiplier (1.0 ⇒ none).
    pub price_multiplier: f64,
    /// Charge paths blocked fleet-wide.
    pub charge_blocked: bool,
    /// Observation dropout: the controller sees the conservative reading.
    pub dropout: bool,
    /// Capacity fades striking this slot, as `(node, factor)`.
    pub fades: Vec<(usize, f64)>,
}

impl SlotFaults {
    fn healthy() -> Self {
        Self {
            node_down: Vec::new(),
            band_down: Vec::new(),
            drought: false,
            price_multiplier: 1.0,
            charge_blocked: false,
            dropout: false,
            fades: Vec::new(),
        }
    }

    /// Whether anything is wrong this slot.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.node_down.iter().any(|&d| d)
            || self.band_down.iter().any(|&d| d)
            || self.drought
            || self.price_multiplier != 1.0
            || self.charge_blocked
            || self.dropout
            || !self.fades.is_empty()
    }
}

/// A fully expanded, replayable per-slot fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    slots: Vec<SlotFaults>,
}

impl FaultPlan {
    /// Expands `spec` over `horizon` slots, drawing every stochastic fault
    /// from `rng` up front. `is_bs[i]` classifies node `i` (for
    /// [`OutageScope`]); `bands` is the total band count including the
    /// cellular band at index 0.
    ///
    /// # Panics
    ///
    /// Panics if a Markov probability is outside `[0, 1]`, a fade factor
    /// is outside `(0, 1]`, a fade names a node `>= is_bs.len()`, or the
    /// dropout probability is outside `[0, 1]`.
    #[must_use]
    pub fn generate(
        spec: &FaultSpec,
        is_bs: &[bool],
        bands: usize,
        horizon: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&spec.dropout_probability),
            "dropout probability {} outside [0, 1]",
            spec.dropout_probability
        );
        for f in &spec.battery_fade {
            assert!(
                f.factor > 0.0 && f.factor <= 1.0,
                "fade factor {} outside (0, 1]",
                f.factor
            );
            assert!(
                f.node < is_bs.len(),
                "fade names node {} but the network has {}",
                f.node,
                is_bs.len()
            );
        }
        // Stream discipline inside the plan: node chains first (node
        // order), then band chains (band order), then the dropout stream —
        // each from its own split, so adding one fault class never
        // perturbs another's draws.
        let mut node_chains: Vec<Option<MarkovOnOff>> = match spec.node_outage {
            None => vec![None; is_bs.len()],
            Some(m) => is_bs
                .iter()
                .map(|&bs| {
                    let in_scope = match spec.outage_scope {
                        OutageScope::BaseStations => bs,
                        OutageScope::Users => !bs,
                        OutageScope::All => true,
                    };
                    let chain = rng.split();
                    in_scope.then(|| {
                        MarkovOnOff::new(m.stay_up, m.stay_down, true, chain)
                            .expect("outage probability outside [0, 1]")
                    })
                })
                .collect(),
        };
        let mut band_chains: Vec<Option<MarkovOnOff>> = match spec.band_loss {
            None => vec![None; bands],
            Some(m) => (0..bands)
                .map(|b| {
                    let chain = rng.split();
                    // Band 0 is the licensed cellular band — never lost.
                    (b > 0).then(|| {
                        MarkovOnOff::new(m.stay_up, m.stay_down, true, chain)
                            .expect("band-loss probability outside [0, 1]")
                    })
                })
                .collect(),
        };
        let mut dropout_rng = rng.split();

        let slots = (0..horizon)
            .map(|t| {
                let mut f = SlotFaults::healthy();
                if spec.node_outage.is_some() {
                    f.node_down = node_chains
                        .iter_mut()
                        .map(|c| c.as_mut().is_some_and(|c| !c.observe()))
                        .collect();
                }
                if spec.band_loss.is_some() {
                    f.band_down = band_chains
                        .iter_mut()
                        .map(|c| c.as_mut().is_some_and(|c| !c.observe()))
                        .collect();
                }
                f.drought = spec.droughts.iter().any(|w| w.contains(t));
                for spike in &spec.price_spikes {
                    if spike.window.contains(t) {
                        f.price_multiplier *= spike.multiplier;
                    }
                }
                f.charge_blocked = spec.charge_block.iter().any(|w| w.contains(t));
                if spec.dropout_probability > 0.0 {
                    f.dropout = dropout_rng.chance(spec.dropout_probability);
                }
                f.fades = spec
                    .battery_fade
                    .iter()
                    .filter(|e| e.slot == t)
                    .map(|e| (e.node, e.factor))
                    .collect();
                f
            })
            .collect();
        Self { slots }
    }

    /// The faults at slot `t`, or `None` past the plan's horizon.
    #[must_use]
    pub fn slot(&self, t: usize) -> Option<&SlotFaults> {
        self.slots.get(t)
    }

    /// Plan length in slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the plan covers zero slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// How many slots carry at least one active fault.
    #[must_use]
    pub fn degraded_slots(&self) -> usize {
        self.slots.iter().filter(|f| f.is_degraded()).count()
    }
}

/// Summary of a [`StabilityWatchdog`]'s verdict over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogReport {
    /// Slots observed.
    pub slots: usize,
    /// Least-squares backlog slope (packets/slot) over the trailing window.
    pub trailing_slope: f64,
    /// Peak total backlog seen (packets).
    pub peak_backlog: f64,
    /// Final total backlog (packets).
    pub final_backlog: f64,
    /// Minimum fleet-wide battery level seen (kWh).
    pub battery_floor_kwh: f64,
    /// Slots whose windowed slope exceeded the divergence threshold.
    pub divergent_slots: usize,
    /// `true` iff the trailing slope is back under the threshold — the
    /// queues are bounded (again) at the end of the run.
    pub stable: bool,
}

/// The complete evolving state of a [`StabilityWatchdog`] — captured by
/// [`StabilityWatchdog::export_state`], replayed by
/// [`StabilityWatchdog::import_state`]. The window size and threshold are
/// construction facts and deliberately absent.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogState {
    /// The trailing backlog samples, oldest first (at most the window).
    pub tail: Vec<f64>,
    /// Total slots recorded over the run so far.
    pub slots: usize,
    /// Running peak backlog (packets; 0 before any sample).
    pub peak_backlog: f64,
    /// Running fleet-battery floor (kWh; `+∞` before any sample).
    pub battery_floor_kwh: f64,
    /// Slots whose windowed slope exceeded the divergence threshold.
    pub divergent_slots: usize,
}

/// Watches a run's total data backlog for divergence and verifies
/// recovery after transient faults.
///
/// Strong stability means the time-averaged backlog stays bounded; its
/// per-run shadow is a windowed least-squares slope that returns to ≈ 0
/// once the admission valve and the degradation ladder have absorbed a
/// disturbance. A slope persistently above the threshold flags divergence.
///
/// Memory is bounded: only the trailing window of samples is kept (the
/// slope, peak, floor, and divergence count are all computable from the
/// tail plus O(1) running aggregates), so the watchdog — and any snapshot
/// of it — stays O(window) no matter how long the run goes.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityWatchdog {
    window: usize,
    slope_threshold: f64,
    /// The trailing `min(window, slots)` backlog samples, oldest first —
    /// the only part of the history [`StabilityWatchdog::trailing_slope`]
    /// reads, so memory stays bounded over arbitrarily long runs (the
    /// long-running serve mode's requirement) and snapshots stay O(window).
    tail: std::collections::VecDeque<f64>,
    /// Total samples recorded (the full-history length the report quotes).
    slots: usize,
    /// Running peak backlog, folded incrementally from 0.
    peak_backlog: f64,
    battery_floor_kwh: f64,
    divergent_slots: usize,
}

impl StabilityWatchdog {
    /// Creates a watchdog with a trailing `window` (≥ 2 slots) and a
    /// divergence threshold in packets/slot (> 0).
    #[must_use]
    pub fn new(window: usize, slope_threshold: f64) -> Self {
        assert!(window >= 2, "watchdog window must cover at least 2 slots");
        assert!(
            slope_threshold > 0.0,
            "divergence threshold must be positive"
        );
        Self {
            window,
            slope_threshold,
            tail: std::collections::VecDeque::with_capacity(window),
            slots: 0,
            peak_backlog: 0.0,
            battery_floor_kwh: f64::INFINITY,
            divergent_slots: 0,
        }
    }

    /// A watchdog scaled to a scenario's load: the trailing window is
    /// **16 slots**, and the divergence threshold sits at 5% of the
    /// nominal per-slot demand (at least 1 packet/slot).
    ///
    /// Divergence uses a strict comparison — a trailing slope *exactly at*
    /// the threshold still counts as stable; only slopes strictly above it
    /// flag divergence.
    #[must_use]
    pub fn for_demand(total_demand_packets_per_slot: f64) -> Self {
        Self::new(16, (0.05 * total_demand_packets_per_slot).max(1.0))
    }

    /// Records one slot's total backlog (packets) and fleet battery level
    /// (kWh).
    pub fn record(&mut self, total_backlog: f64, total_battery_kwh: f64) {
        if self.tail.len() == self.window {
            self.tail.pop_front();
        }
        self.tail.push_back(total_backlog);
        self.slots += 1;
        self.peak_backlog = self.peak_backlog.max(total_backlog);
        self.battery_floor_kwh = self.battery_floor_kwh.min(total_battery_kwh);
        if self.slots >= self.window && self.trailing_slope() > self.slope_threshold {
            self.divergent_slots += 1;
        }
    }

    /// The least-squares backlog slope over the trailing window
    /// (packets/slot); 0 with fewer than 2 samples.
    #[must_use]
    pub fn trailing_slope(&self) -> f64 {
        let tail_len = self.tail.len();
        if tail_len < 2 {
            return 0.0;
        }
        // Ordinary least squares on (t, backlog): slope = cov / var.
        let n = tail_len as f64;
        let t_mean = (n - 1.0) / 2.0;
        let y_mean = self.tail.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (t, &y) in self.tail.iter().enumerate() {
            let dt = t as f64 - t_mean;
            cov += dt * (y - y_mean);
            var += dt * dt;
        }
        cov / var
    }

    /// Whether the watchdog currently flags divergence.
    #[must_use]
    pub fn is_divergent(&self) -> bool {
        self.slots >= self.window && self.trailing_slope() > self.slope_threshold
    }

    /// The divergence threshold (packets/slot).
    #[must_use]
    pub fn slope_threshold(&self) -> f64 {
        self.slope_threshold
    }

    /// The trailing window length (slots).
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Captures the evolving state (tail samples, counters, running
    /// extremes) as a [`WatchdogState`] — O(window) regardless of how long
    /// the run has been going.
    #[must_use]
    pub fn export_state(&self) -> WatchdogState {
        WatchdogState {
            tail: self.tail.iter().copied().collect(),
            slots: self.slots,
            peak_backlog: self.peak_backlog,
            battery_floor_kwh: self.battery_floor_kwh,
            divergent_slots: self.divergent_slots,
        }
    }

    /// Overwrites the evolving state from a captured [`WatchdogState`].
    ///
    /// # Panics
    ///
    /// Panics if the state is internally inconsistent with this watchdog's
    /// window (more tail samples than the window holds, or a tail shorter
    /// than `min(window, slots)`).
    pub fn import_state(&mut self, state: &WatchdogState) {
        assert!(
            state.tail.len() <= self.window,
            "tail exceeds the watchdog window"
        );
        assert_eq!(
            state.tail.len(),
            state.slots.min(self.window),
            "tail must hold the trailing min(window, slots) samples"
        );
        self.tail = state.tail.iter().copied().collect();
        self.slots = state.slots;
        self.peak_backlog = state.peak_backlog;
        self.battery_floor_kwh = state.battery_floor_kwh;
        self.divergent_slots = state.divergent_slots;
    }

    /// The end-of-run verdict.
    #[must_use]
    pub fn report(&self) -> WatchdogReport {
        WatchdogReport {
            slots: self.slots,
            trailing_slope: self.trailing_slope(),
            peak_backlog: self.peak_backlog,
            final_backlog: self.tail.back().copied().unwrap_or(0.0),
            battery_floor_kwh: if self.battery_floor_kwh.is_finite() {
                self.battery_floor_kwh
            } else {
                0.0
            },
            divergent_slots: self.divergent_slots,
            stable: !self.is_divergent(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: &FaultSpec, seed: u64, horizon: usize) -> FaultPlan {
        let mut rng = Rng::seed_from(seed);
        FaultPlan::generate(spec, &[true, false, false], 3, horizon, &mut rng)
    }

    #[test]
    fn noop_spec_yields_clean_plan() {
        let p = plan(&FaultSpec::default(), 1, 50);
        assert_eq!(p.len(), 50);
        assert_eq!(p.degraded_slots(), 0);
        assert!(!p.slot(0).unwrap().is_degraded());
        assert!(p.slot(50).is_none());
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let spec = FaultSpec::chaos(40);
        assert_eq!(plan(&spec, 7, 40), plan(&spec, 7, 40));
        // The chaos spec injects stochastic faults, so a different seed
        // almost surely produces a different plan.
        assert_ne!(plan(&spec, 7, 40), plan(&spec, 8, 40));
    }

    #[test]
    fn bs_outage_spares_users_and_band_loss_spares_cellular() {
        let p = plan(&FaultSpec::bs_outage(), 3, 200);
        let mut bs_down = 0;
        for t in 0..200 {
            let f = p.slot(t).unwrap();
            if !f.node_down.is_empty() {
                assert!(!f.node_down[1] && !f.node_down[2], "users must stay up");
                bs_down += usize::from(f.node_down[0]);
            }
        }
        assert!(bs_down > 0, "a 200-slot bursty outage should strike");

        let p = plan(&FaultSpec::band_loss(), 3, 200);
        let mut lost = 0;
        for t in 0..200 {
            let f = p.slot(t).unwrap();
            if !f.band_down.is_empty() {
                assert!(!f.band_down[0], "cellular band must never be lost");
                lost += f.band_down.iter().filter(|&&d| d).count();
            }
        }
        assert!(lost > 0, "random bands should drop out");
    }

    #[test]
    fn windows_and_fades_land_on_their_slots() {
        let mut spec = FaultSpec::renewable_drought(5, 8);
        spec.price_spikes = vec![PriceSpike {
            window: SlotWindow::new(2, 4),
            multiplier: 3.0,
        }];
        spec.charge_block = vec![SlotWindow::new(6, 7)];
        spec.battery_fade = vec![FadeEvent {
            slot: 9,
            node: 2,
            factor: 0.5,
        }];
        let p = plan(&spec, 1, 12);
        assert!(p.slot(5).unwrap().drought && p.slot(7).unwrap().drought);
        assert!(!p.slot(4).unwrap().drought && !p.slot(8).unwrap().drought);
        assert_eq!(p.slot(3).unwrap().price_multiplier, 3.0);
        assert_eq!(p.slot(4).unwrap().price_multiplier, 1.0);
        assert!(p.slot(6).unwrap().charge_blocked);
        assert!(!p.slot(7).unwrap().charge_blocked);
        assert_eq!(p.slot(9).unwrap().fades, vec![(2, 0.5)]);
        assert!(p.slot(10).unwrap().fades.is_empty());
        assert_eq!(p.degraded_slots(), 6); // {2,3} spike, {5,6,7} drought (6 also blocked), {9} fade
    }

    #[test]
    #[should_panic(expected = "fade factor")]
    fn invalid_fade_factor_rejected() {
        let spec = FaultSpec {
            battery_fade: vec![FadeEvent {
                slot: 0,
                node: 0,
                factor: 1.5,
            }],
            ..FaultSpec::default()
        };
        let _ = plan(&spec, 1, 4);
    }

    #[test]
    fn presets_resolve_and_windows_scale_to_the_horizon() {
        assert_eq!(
            FaultSpec::from_preset("bs-outage", 40).unwrap(),
            FaultSpec::bs_outage()
        );
        assert_eq!(
            FaultSpec::from_preset("drought", 40).unwrap().droughts,
            vec![SlotWindow::new(10, 20)]
        );
        assert_eq!(
            FaultSpec::from_preset("price-spike", 40)
                .unwrap()
                .price_spikes,
            vec![PriceSpike {
                window: SlotWindow::new(10, 20),
                multiplier: 6.0,
            }]
        );
        assert_eq!(
            FaultSpec::from_preset("band-loss", 40).unwrap(),
            FaultSpec::band_loss()
        );
        assert_eq!(
            FaultSpec::from_preset("chaos", 40).unwrap(),
            FaultSpec::chaos(40)
        );
    }

    #[test]
    fn misspelled_preset_is_a_typed_config_error_naming_the_valid_set() {
        match FaultSpec::from_preset("draught", 40) {
            Err(crate::SimError::InvalidConfig { detail }) => {
                assert!(detail.contains("unknown fault preset: draught"), "{detail}");
                for valid in FaultSpec::PRESETS {
                    assert!(detail.contains(valid), "{detail} must list {valid}");
                }
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_flags_divergence_and_recovery() {
        let mut w = StabilityWatchdog::new(8, 5.0);
        // Plateau: stable.
        for _ in 0..20 {
            w.record(100.0, 1.0);
        }
        assert!(!w.is_divergent());
        assert_eq!(w.report().divergent_slots, 0);
        // Sustained growth at 50 packets/slot: divergent.
        let mut backlog = 100.0;
        for _ in 0..20 {
            backlog += 50.0;
            w.record(backlog, 0.4);
        }
        assert!(w.is_divergent());
        let mid = w.report();
        assert!(mid.divergent_slots > 0);
        assert!(!mid.stable);
        // Drain back down and hold: recovered.
        for _ in 0..30 {
            backlog = (backlog - 80.0).max(50.0);
            w.record(backlog, 0.9);
        }
        let end = w.report();
        assert!(end.stable, "watchdog must report recovery after drain");
        assert!((end.battery_floor_kwh - 0.4).abs() < 1e-12);
        assert_eq!(end.peak_backlog, 1100.0);
    }

    #[test]
    fn watchdog_constant_backlog_has_zero_slope_and_stays_stable() {
        // A saturated-but-flat queue is the textbook strongly-stable case:
        // the OLS slope of a constant series is exactly zero.
        let mut w = StabilityWatchdog::for_demand(100.0);
        for _ in 0..64 {
            w.record(5000.0, 1.0);
        }
        assert_eq!(w.trailing_slope(), 0.0);
        assert!(!w.is_divergent());
        let report = w.report();
        assert!(report.stable);
        assert_eq!(report.divergent_slots, 0);
    }

    #[test]
    fn watchdog_slope_exactly_at_threshold_is_stable() {
        // The divergence test is a strict `>`: growth at precisely the
        // threshold rate must not trip the watchdog. An exactly-linear
        // ramp gives an exact OLS slope, so no tolerance games here.
        let threshold = 5.0;
        let mut w = StabilityWatchdog::new(8, threshold);
        for t in 0..40 {
            w.record(threshold * t as f64, 1.0);
        }
        assert!((w.trailing_slope() - threshold).abs() < 1e-12);
        assert!(!w.is_divergent());
        let report = w.report();
        assert!(report.stable);
        assert_eq!(report.divergent_slots, 0);

        // One packet/slot faster and it must flag.
        let mut hot = StabilityWatchdog::new(8, threshold);
        for t in 0..40 {
            hot.record((threshold + 1.0) * t as f64, 1.0);
        }
        assert!(hot.is_divergent());
    }

    #[test]
    fn watchdog_slope_matches_linear_series() {
        let mut w = StabilityWatchdog::new(10, 1.0);
        for t in 0..25 {
            w.record(3.0 * t as f64, 1.0);
        }
        assert!((w.trailing_slope() - 3.0).abs() < 1e-9);
    }
}
