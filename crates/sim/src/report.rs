//! Plain-text rendering of experiment results: aligned tables and
//! CSV-ready series for each figure.

use crate::experiments::{ArchitectureRow, BacklogRow, BoundsRow, BufferRow};
use crate::SimError;
use greencell_stochastic::Series;
use std::fmt::Write as _;

/// Renders Fig. 2(a)'s rows as an aligned table.
#[must_use]
pub fn bounds_table(rows: &[BoundsRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>16} {:>16} {:>16} {:>16} {:>16} {:>16}",
        "V", "upper f̄", "lower f̄−B/V", "relaxed f̄", "B/V", "upper ψ", "lower ψ"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>12.3e} {:>16.6} {:>16.6} {:>16.6} {:>16.6e} {:>16.6} {:>16.6}",
            r.v, r.upper, r.lower, r.relaxed_cost, r.gap, r.upper_psi, r.lower_psi
        );
    }
    out
}

/// Renders a set of same-length series as CSV with a slot column.
///
/// # Errors
///
/// Returns [`SimError::Serialize`] if the header does not cover every
/// column or the series lengths differ.
pub fn series_csv(header: &[&str], series: &[&Series]) -> Result<String, SimError> {
    if header.len() != series.len() + 1 {
        return Err(SimError::Serialize(format!(
            "one header per column + slot: got {} headers for {} series",
            header.len(),
            series.len()
        )));
    }
    let len = series.first().map_or(0, |s| s.len());
    if let Some(bad) = series.iter().find(|s| s.len() != len) {
        return Err(SimError::Serialize(format!(
            "series lengths differ: expected {len}, got {}",
            bad.len()
        )));
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for t in 0..len {
        let _ = write!(out, "{t}");
        for s in series {
            let v = s.at(t).ok_or_else(|| {
                SimError::Serialize(format!("series shorter than its stated length at slot {t}"))
            })?;
            let _ = write!(out, ",{v}");
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

/// Renders Fig. 2(b)/(c) trajectories as two CSV blocks.
///
/// # Errors
///
/// Returns [`SimError::Serialize`] if the rows' series lengths differ.
pub fn backlog_csv(rows: &[BacklogRow]) -> Result<(String, String), SimError> {
    let mut header = vec!["slot".to_string()];
    header.extend(rows.iter().map(|r| format!("V={:.0e}", r.v)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let bs: Vec<&Series> = rows.iter().map(|r| &r.bs).collect();
    let users: Vec<&Series> = rows.iter().map(|r| &r.users).collect();
    Ok((
        series_csv(&header_refs, &bs)?,
        series_csv(&header_refs, &users)?,
    ))
}

/// Renders Fig. 2(d)/(e) trajectories as two CSV blocks.
///
/// # Errors
///
/// Returns [`SimError::Serialize`] if the rows' series lengths differ.
pub fn buffer_csv(rows: &[BufferRow]) -> Result<(String, String), SimError> {
    let mut header = vec!["slot".to_string()];
    header.extend(rows.iter().map(|r| format!("V={:.0e}", r.v)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let bs: Vec<&Series> = rows.iter().map(|r| &r.bs_kwh).collect();
    let users: Vec<&Series> = rows.iter().map(|r| &r.users_wh).collect();
    Ok((
        series_csv(&header_refs, &bs)?,
        series_csv(&header_refs, &users)?,
    ))
}

/// Renders Fig. 2(f)'s comparison as an aligned table.
#[must_use]
pub fn architecture_table(rows: &[ArchitectureRow], v_values: &[f64]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<42}", "architecture");
    for v in v_values {
        let _ = write!(out, " {:>14}", format!("V={v:.0e}"));
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:<42}", r.architecture.to_string());
        for c in &r.costs {
            let _ = write!(out, " {c:>14.6}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a series as a one-line Unicode sparkline (8 levels), for quick
/// terminal inspection of trajectories.
///
/// # Examples
///
/// ```
/// use greencell_sim::report::sparkline;
/// use greencell_stochastic::Series;
///
/// let s: Series = [0.0, 1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(sparkline(&s), "▁▃▆█");
/// ```
#[must_use]
pub fn sparkline(series: &Series) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let values = series.values();
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if span <= f64::EPSILON {
                LEVELS[0]
            } else {
                let idx = ((v - min) / span * 7.0).round() as usize;
                LEVELS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Architecture;

    #[test]
    fn bounds_table_has_one_line_per_row() {
        let rows = vec![BoundsRow {
            v: 1e5,
            upper: 2.0,
            lower: 1.0,
            relaxed_cost: 1.5,
            gap: 0.5,
            upper_psi: -10.0,
            lower_psi: -12.0,
        }];
        let t = bounds_table(&rows);
        assert_eq!(t.lines().count(), 2);
        assert!(t.contains("1e5") || t.contains("1.000e5"));
    }

    #[test]
    fn series_csv_layout() {
        let a: Series = [1.0, 2.0].into_iter().collect();
        let b: Series = [3.0, 4.0].into_iter().collect();
        let csv = series_csv(&["slot", "a", "b"], &[&a, &b]).unwrap();
        assert_eq!(csv, "slot,a,b\n0,1,3\n1,2,4\n");
    }

    #[test]
    fn mismatched_series_rejected() {
        let a: Series = [1.0].into_iter().collect();
        let b: Series = [1.0, 2.0].into_iter().collect();
        let err = series_csv(&["slot", "a", "b"], &[&a, &b]).unwrap_err();
        assert!(matches!(err, SimError::Serialize(_)));
        assert!(err.to_string().contains("series lengths differ"));
    }

    #[test]
    fn short_header_rejected() {
        let a: Series = [1.0].into_iter().collect();
        let err = series_csv(&["slot"], &[&a]).unwrap_err();
        assert!(matches!(err, SimError::Serialize(_)));
    }

    #[test]
    fn sparkline_levels() {
        let s: Series = [0.0, 7.0].into_iter().collect();
        assert_eq!(sparkline(&s), "▁█");
        let flat: Series = [5.0, 5.0, 5.0].into_iter().collect();
        assert_eq!(sparkline(&flat), "▁▁▁");
        assert_eq!(sparkline(&Series::new()), "");
    }

    #[test]
    fn architecture_table_lists_all() {
        let rows = vec![ArchitectureRow {
            architecture: Architecture::Proposed,
            costs: vec![1.0, 2.0],
        }];
        let t = architecture_table(&rows, &[1e5, 3e5]);
        assert!(t.contains("Our system"));
        assert_eq!(t.lines().count(), 2);
    }
}
