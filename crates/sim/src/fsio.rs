//! Crash-safe file output: atomic temp-file + rename writes.
//!
//! Every artifact the workspace persists — sweep telemetry, trace
//! bundles, snapshots, checkpoints — goes through
//! [`write_text_atomic`], so a crash mid-write can never leave a
//! half-written file at the destination path: readers either see the old
//! contents or the complete new contents, never a torn prefix.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers targeting the same destination from
/// within one process (parallel sweep workers); the process id separates
/// processes.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_sibling(path: &Path) -> PathBuf {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map_or_else(|| "out".into(), |f| f.to_os_string());
    name.push(format!(".tmp.{}.{n}", std::process::id()));
    path.with_file_name(name)
}

/// Writes `text` to `path` atomically: the bytes land in a temp sibling
/// in the same directory (same filesystem, so the final rename cannot
/// cross a mount), are flushed and fsynced, and only then renamed over
/// the destination. On any error the temp file is removed and `path` is
/// left untouched.
///
/// # Errors
///
/// Propagates the underlying I/O error (create, write, sync, or rename).
pub fn write_text_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original error is the one that matters.
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("greencell-fsio-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        write_text_atomic(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_text_atomic(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_no_temp() {
        let missing = Path::new("/nonexistent-greencell-dir/artifact.json");
        assert!(write_text_atomic(missing, "x").is_err());
    }
}
