//! Long-running service mode: observation-driven stepping over
//! stdin/stdout with crash recovery.
//!
//! [`run_serve`] reads **JSON lines** from any [`BufRead`] — one
//! observation per line — steps the controller through
//! [`Simulator::step_with_observation`], and writes JSON event lines
//! (status gauges, watchdog verdicts, snapshot notices, rejections) to
//! any [`Write`]. Malformed lines are rejected with a typed event and
//! counted against a bounded error budget; exhausting the budget stops
//! the session instead of looping on garbage forever.
//!
//! With a state directory configured, the session auto-snapshots every
//! `snapshot_every` slots (rotating `latest.snap` → `prev.snap`) and, on
//! startup, restores from the newest snapshot that validates —
//! quarantining any corrupt one to `<name>.corrupt` and falling back to
//! the previous generation, then to a fresh start. Because snapshots
//! capture the metrics and watchdog too, a killed-and-restarted session
//! fed the same remaining observations reports the same gauges as one
//! that never died.
//!
//! # Line protocol
//!
//! Observation lines (all arrays index nodes/sessions in network order):
//!
//! ```json
//! {"renewable_w":[5.0,0.0,1.2,…],"grid":[true,false,…],"demand":[3,3],
//!  "bands_mhz":[1.0,1.5,…],"price":1.0,"available":[true,…]}
//! ```
//!
//! `renewable_w`, `grid`, and `demand` are required; `bands_mhz`
//! defaults to the scenario's nominal spectrum, `price` to the
//! scenario's tariff for the slot, `available` to all-up. Command lines:
//! `{"cmd":"status"}` (emit a status event now), `{"cmd":"snapshot"}`
//! (snapshot now), `{"cmd":"stop"}` (finish cleanly).

use crate::{Scenario, SimError, SimSnapshot, Simulator};
use greencell_core::SlotObservation;
use greencell_phy::SpectrumState;
use greencell_trace::json::{parse, Value};
use greencell_units::{Bandwidth, Packets, Power};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// File name of the newest snapshot generation in the state directory.
pub const SNAP_LATEST: &str = "latest.snap";
/// File name of the previous snapshot generation.
pub const SNAP_PREV: &str = "prev.snap";

/// Tunables for a [`run_serve`] session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Auto-snapshot period in slots; `0` disables auto-snapshots.
    pub snapshot_every: usize,
    /// Status-event period in slots; `0` emits status only on request.
    pub status_every: usize,
    /// How many malformed input lines the session tolerates before it
    /// stops with [`StopReason::ErrorBudgetExhausted`].
    pub error_budget: usize,
    /// Where snapshots live; `None` disables persistence entirely.
    pub state_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            snapshot_every: 50,
            status_every: 10,
            error_budget: 10,
            state_dir: None,
        }
    }
}

/// Why a serve session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The input stream reached end-of-file.
    InputClosed,
    /// A `{"cmd":"stop"}` line asked for a clean shutdown.
    StopCommand,
    /// More malformed lines arrived than the budget allows.
    ErrorBudgetExhausted,
}

impl StopReason {
    /// The wire name emitted in the final `stop` event.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::InputClosed => "input-closed",
            Self::StopCommand => "stop-command",
            Self::ErrorBudgetExhausted => "error-budget-exhausted",
        }
    }
}

/// What a completed [`run_serve`] session did.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSummary {
    /// Slots stepped by *this* session (excludes restored history).
    pub slots_stepped: usize,
    /// The simulator's total slot count at shutdown (includes restored
    /// history).
    pub total_slots: usize,
    /// Malformed input lines rejected.
    pub rejected_lines: usize,
    /// Snapshots written (auto + on-demand).
    pub snapshots_written: usize,
    /// The snapshot this session restored from, if any.
    pub restored_from: Option<PathBuf>,
    /// Snapshot files quarantined during startup recovery.
    pub quarantined: Vec<PathBuf>,
    /// Why the session ended.
    pub stop_reason: StopReason,
}

fn io_err(e: &std::io::Error) -> SimError {
    SimError::Io(e.to_string())
}

fn emit<W: Write>(out: &mut W, line: &str) -> Result<(), SimError> {
    writeln!(out, "{line}")
        .and_then(|()| out.flush())
        .map_err(|e| io_err(&e))
}

/// Moves an unusable snapshot aside as `<name>.corrupt` so the next
/// startup does not trip over it again.
fn quarantine(path: &Path) -> Result<PathBuf, SimError> {
    let mut name = path
        .file_name()
        .map_or_else(|| "snapshot".into(), std::ffi::OsStr::to_os_string);
    name.push(".corrupt");
    let target = path.with_file_name(name);
    std::fs::rename(path, &target).map_err(|e| SimError::Io(format!("{}: {e}", path.display())))?;
    Ok(target)
}

// ---------------------------------------------------------------------------
// Observation-line decoding (human JSON: plain numbers, not hex bits).
// ---------------------------------------------------------------------------

fn num_list(v: &Value, what: &str, len: usize) -> Result<Vec<f64>, String> {
    let a = v
        .as_array()
        .ok_or_else(|| format!("{what} must be an array"))?;
    if a.len() != len {
        return Err(format!("{what} has {} entries, need {len}", a.len()));
    }
    a.iter()
        .map(|x| {
            x.as_f64()
                .filter(|n| n.is_finite())
                .ok_or_else(|| format!("{what} entries must be finite numbers"))
        })
        .collect()
}

fn bool_list(v: &Value, what: &str, len: usize) -> Result<Vec<bool>, String> {
    let a = v
        .as_array()
        .ok_or_else(|| format!("{what} must be an array"))?;
    if a.len() != len {
        return Err(format!("{what} has {} entries, need {len}", a.len()));
    }
    a.iter()
        .map(|x| {
            x.as_bool()
                .ok_or_else(|| format!("{what} entries must be booleans"))
        })
        .collect()
}

/// Decodes one observation line against the session's dimensions.
fn observation_of(
    v: &Value,
    scenario: &Scenario,
    nodes: usize,
    sessions: usize,
    slot_index: usize,
) -> Result<SlotObservation, String> {
    let bands = scenario.band_count();
    let renewable_w = num_list(
        v.get("renewable_w")
            .ok_or_else(|| "missing renewable_w".to_string())?,
        "renewable_w",
        nodes,
    )?;
    if renewable_w.iter().any(|&w| w < 0.0) {
        return Err("renewable_w entries must be non-negative".to_string());
    }
    let grid_connected = bool_list(
        v.get("grid").ok_or_else(|| "missing grid".to_string())?,
        "grid",
        nodes,
    )?;
    let demand = num_list(
        v.get("demand")
            .ok_or_else(|| "missing demand".to_string())?,
        "demand",
        sessions,
    )?;
    let session_demand: Vec<Packets> = demand
        .iter()
        .map(|&d| {
            if d >= 0.0 && d.fract() == 0.0 && d <= 2f64.powi(53) {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Ok(Packets::new(d as u64))
            } else {
                Err("demand entries must be non-negative integers".to_string())
            }
        })
        .collect::<Result<_, _>>()?;
    let bands_mhz = match v.get("bands_mhz") {
        Some(b) => {
            let list = num_list(b, "bands_mhz", bands)?;
            if list.iter().any(|&w| w < 0.0) {
                return Err("bands_mhz entries must be non-negative".to_string());
            }
            list
        }
        // Nominal spectrum: the licensed band plus each harvested band's
        // range midpoint.
        None => std::iter::once(scenario.cellular_band_mhz)
            .chain(
                scenario
                    .random_bands
                    .iter()
                    .map(|&(lo, hi)| (lo + hi) / 2.0),
            )
            .collect(),
    };
    let price_multiplier = match v.get("price") {
        Some(p) => p
            .as_f64()
            .filter(|x| x.is_finite() && *x >= 0.0)
            .ok_or_else(|| "price must be a finite non-negative number".to_string())?,
        None => scenario.pricing.multiplier(slot_index),
    };
    let node_available = match v.get("available") {
        Some(a) => bool_list(a, "available", nodes)?,
        None => Vec::new(),
    };
    Ok(SlotObservation {
        spectrum: SpectrumState::new(
            bands_mhz
                .into_iter()
                .map(Bandwidth::from_megahertz)
                .collect(),
        ),
        renewable: renewable_w
            .into_iter()
            .map(|w| Power::from_watts(w) * scenario.slot)
            .collect(),
        grid_connected,
        session_demand,
        price_multiplier,
        node_available,
    })
}

// ---------------------------------------------------------------------------
// Session.
// ---------------------------------------------------------------------------

/// Restores from the newest valid snapshot generation, quarantining any
/// that fail validation; returns a fresh simulator when none survive.
fn start_simulator(
    scenario: &Scenario,
    state_dir: Option<&Path>,
    restored_from: &mut Option<PathBuf>,
    quarantined: &mut Vec<PathBuf>,
) -> Result<Simulator, SimError> {
    if let Some(dir) = state_dir {
        for name in [SNAP_LATEST, SNAP_PREV] {
            let path = dir.join(name);
            if !path.exists() {
                continue;
            }
            match SimSnapshot::read(&path).and_then(|snap| Simulator::restore(scenario, &snap)) {
                Ok(sim) => {
                    *restored_from = Some(path);
                    return Ok(sim);
                }
                Err(
                    SimError::CorruptSnapshot { .. } | SimError::SnapshotVersionMismatch { .. },
                ) => {
                    quarantined.push(quarantine(&path)?);
                }
                Err(other) => return Err(other),
            }
        }
    }
    Simulator::new(scenario)
}

fn write_snapshot(sim: &Simulator, dir: &Path) -> Result<PathBuf, SimError> {
    std::fs::create_dir_all(dir)?;
    let latest = dir.join(SNAP_LATEST);
    if latest.exists() {
        std::fs::rename(&latest, dir.join(SNAP_PREV))?;
    }
    sim.snapshot().write(&latest)?;
    Ok(latest)
}

fn status_line(sim: &Simulator) -> String {
    let w = sim.watchdog().report();
    format!(
        "{{\"event\":\"status\",\"slot\":{},\"avg_cost\":{},\"delivered\":{},\"total_backlog\":{},\"peak_backlog\":{},\"battery_floor_kwh\":{},\"trailing_slope\":{},\"divergent_slots\":{},\"stable\":{}}}",
        sim.slots_run(),
        crate::sweep::json_f64(sim.metrics().average_cost()),
        sim.delivered().count(),
        crate::sweep::json_f64(w.final_backlog),
        crate::sweep::json_f64(w.peak_backlog),
        crate::sweep::json_f64(w.battery_floor_kwh),
        crate::sweep::json_f64(w.trailing_slope),
        w.divergent_slots,
        w.stable,
    )
}

/// Runs a serve session: observations in, events out, snapshots on the
/// side. See the module docs for the line protocol.
///
/// # Errors
///
/// Returns [`SimError`] on controller failures, on I/O errors reading
/// input / writing events or snapshots, and on a snapshot that cannot
/// even be quarantined. Malformed *lines* are not errors — they are
/// rejected events counted against the budget.
pub fn run_serve<R: BufRead, W: Write>(
    scenario: &Scenario,
    config: &ServeConfig,
    input: R,
    output: &mut W,
) -> Result<ServeSummary, SimError> {
    let mut restored_from = None;
    let mut quarantined = Vec::new();
    let mut sim = start_simulator(
        scenario,
        config.state_dir.as_deref(),
        &mut restored_from,
        &mut quarantined,
    )?;
    for q in &quarantined {
        emit(
            output,
            &format!(
                "{{\"event\":\"quarantine\",\"path\":\"{}\"}}",
                crate::sweep::json_escape(&q.display().to_string())
            ),
        )?;
    }
    emit(
        output,
        &format!(
            "{{\"event\":\"start\",\"slot\":{},\"restored\":{}}}",
            sim.slots_run(),
            restored_from.is_some(),
        ),
    )?;

    let nodes = sim.network().topology().len();
    let sessions = sim.network().sessions().len();
    let mut summary = ServeSummary {
        slots_stepped: 0,
        total_slots: sim.slots_run(),
        rejected_lines: 0,
        snapshots_written: 0,
        restored_from,
        quarantined,
        stop_reason: StopReason::InputClosed,
    };

    let snapshot_now = |sim: &Simulator,
                        out: &mut W,
                        summary: &mut ServeSummary|
     -> Result<(), SimError> {
        let Some(dir) = &config.state_dir else {
            return emit(
                out,
                &format!(
                    "{{\"event\":\"snapshot\",\"slot\":{},\"path\":null,\"error\":\"no state dir configured\"}}",
                    sim.slots_run()
                ),
            );
        };
        let path = write_snapshot(sim, dir)?;
        summary.snapshots_written += 1;
        emit(
            out,
            &format!(
                "{{\"event\":\"snapshot\",\"slot\":{},\"path\":\"{}\"}}",
                sim.slots_run(),
                crate::sweep::json_escape(&path.display().to_string())
            ),
        )
    };

    'lines: for (line_no, line) in input.lines().enumerate() {
        let line = line.map_err(|e| io_err(&e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reject = |reason: &str, out: &mut W, summary: &mut ServeSummary| {
            summary.rejected_lines += 1;
            emit(
                out,
                &format!(
                    "{{\"event\":\"reject\",\"line\":{},\"reason\":\"{}\"}}",
                    line_no + 1,
                    crate::sweep::json_escape(reason)
                ),
            )
        };
        let value = match parse(trimmed) {
            Ok(v) => v,
            Err(e) => {
                reject(&format!("unparseable JSON: {e}"), output, &mut summary)?;
                if summary.rejected_lines > config.error_budget {
                    summary.stop_reason = StopReason::ErrorBudgetExhausted;
                    break 'lines;
                }
                continue;
            }
        };
        if let Some(cmd) = value.get("cmd") {
            match cmd.as_str() {
                Some("stop") => {
                    summary.stop_reason = StopReason::StopCommand;
                    break 'lines;
                }
                Some("status") => emit(output, &status_line(&sim))?,
                Some("snapshot") => snapshot_now(&sim, output, &mut summary)?,
                _ => {
                    reject("unknown cmd", output, &mut summary)?;
                    if summary.rejected_lines > config.error_budget {
                        summary.stop_reason = StopReason::ErrorBudgetExhausted;
                        break 'lines;
                    }
                }
            }
            continue;
        }
        match observation_of(&value, scenario, nodes, sessions, sim.slots_run()) {
            Ok(obs) => {
                sim.step_with_observation(&obs)?;
                summary.slots_stepped += 1;
                if config.status_every > 0 && sim.slots_run() % config.status_every == 0 {
                    emit(output, &status_line(&sim))?;
                }
                if config.snapshot_every > 0
                    && sim.slots_run() % config.snapshot_every == 0
                    && config.state_dir.is_some()
                {
                    snapshot_now(&sim, output, &mut summary)?;
                }
            }
            Err(reason) => {
                reject(&reason, output, &mut summary)?;
                if summary.rejected_lines > config.error_budget {
                    summary.stop_reason = StopReason::ErrorBudgetExhausted;
                    break 'lines;
                }
            }
        }
    }

    // A final snapshot on any exit path, so a clean stop never loses the
    // tail between auto-snapshots.
    if config.state_dir.is_some() && summary.slots_stepped > 0 {
        snapshot_now(&sim, output, &mut summary)?;
    }
    summary.total_slots = sim.slots_run();
    emit(output, &status_line(&sim))?;
    emit(
        output,
        &format!(
            "{{\"event\":\"stop\",\"slot\":{},\"reason\":\"{}\"}}",
            sim.slots_run(),
            summary.stop_reason.as_str()
        ),
    )?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::tiny(71)
    }

    fn dims(s: &Scenario) -> (usize, usize) {
        let sim = Simulator::new(s).expect("scenario builds");
        (
            sim.network().topology().len(),
            sim.network().sessions().len(),
        )
    }

    /// A deterministic, slightly varying observation line.
    fn obs_line(nodes: usize, sessions: usize, t: usize) -> String {
        let renew: Vec<String> = (0..nodes).map(|i| format!("{}.0", (i + t) % 4)).collect();
        let grid: Vec<&str> = (0..nodes)
            .map(|i| if (i + t) % 3 == 0 { "false" } else { "true" })
            .collect();
        let demand: Vec<String> = (0..sessions)
            .map(|s| format!("{}", 1 + (s + t) % 3))
            .collect();
        format!(
            "{{\"renewable_w\":[{}],\"grid\":[{}],\"demand\":[{}]}}",
            renew.join(","),
            grid.join(","),
            demand.join(",")
        )
    }

    fn serve(s: &Scenario, cfg: &ServeConfig, input: &str) -> (ServeSummary, String) {
        let mut out = Vec::new();
        let summary =
            run_serve(s, cfg, input.as_bytes(), &mut out).expect("serve session succeeds");
        (summary, String::from_utf8(out).expect("utf8 events"))
    }

    fn last_status(events: &str) -> &str {
        events
            .lines()
            .rev()
            .find(|l| l.contains("\"event\":\"status\""))
            .expect("a status event")
    }

    #[test]
    fn steps_observations_and_reports_status() {
        let s = scenario();
        let (nodes, sessions) = dims(&s);
        let input: String = (0..6)
            .map(|t| obs_line(nodes, sessions, t) + "\n")
            .collect::<String>()
            + "{\"cmd\":\"status\"}\n{\"cmd\":\"stop\"}\nignored after stop\n";
        let cfg = ServeConfig {
            status_every: 2,
            ..ServeConfig::default()
        };
        let (summary, events) = serve(&s, &cfg, &input);
        assert_eq!(summary.slots_stepped, 6);
        assert_eq!(summary.stop_reason, StopReason::StopCommand);
        assert_eq!(summary.rejected_lines, 0);
        assert!(events.contains("\"event\":\"start\""));
        assert!(events.contains("\"event\":\"status\""));
        assert!(events.trim_end().ends_with("\"reason\":\"stop-command\"}"));
    }

    #[test]
    fn malformed_lines_burn_the_budget_then_stop() {
        let s = scenario();
        let (nodes, sessions) = dims(&s);
        let cfg = ServeConfig {
            error_budget: 2,
            state_dir: None,
            ..ServeConfig::default()
        };
        // Two bad lines fit the budget; the session keeps stepping.
        let input = format!(
            "not json\n{}\n{{\"renewable_w\":[1.0],\"grid\":[],\"demand\":[]}}\n{}\n",
            obs_line(nodes, sessions, 0),
            obs_line(nodes, sessions, 1)
        );
        let (summary, events) = serve(&s, &cfg, &input);
        assert_eq!(summary.rejected_lines, 2);
        assert_eq!(summary.slots_stepped, 2);
        assert_eq!(summary.stop_reason, StopReason::InputClosed);
        assert!(events.contains("\"event\":\"reject\""));

        // A third bad line exhausts it; later observations never run.
        let input = format!("a\nb\nc\n{}\n", obs_line(nodes, sessions, 0));
        let (summary, _) = serve(&s, &cfg, &input);
        assert_eq!(summary.stop_reason, StopReason::ErrorBudgetExhausted);
        assert_eq!(summary.slots_stepped, 0);
    }

    #[test]
    fn restart_restores_and_matches_an_uninterrupted_session() {
        let s = scenario();
        let (nodes, sessions) = dims(&s);
        let dir = std::env::temp_dir().join(format!("greencell-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lines: Vec<String> = (0..8).map(|t| obs_line(nodes, sessions, t)).collect();

        // Uninterrupted reference: all 8 observations, no persistence.
        let cfg_ref = ServeConfig {
            status_every: 1,
            state_dir: None,
            ..ServeConfig::default()
        };
        let (_, reference) = serve(&s, &cfg_ref, &(lines.join("\n") + "\n"));

        // Killed after 4, restarted for the remaining 4.
        let cfg = ServeConfig {
            status_every: 1,
            snapshot_every: 2,
            error_budget: 0,
            state_dir: Some(dir.clone()),
        };
        let (first, _) = serve(&s, &cfg, &(lines[..4].join("\n") + "\n"));
        assert_eq!(first.slots_stepped, 4);
        assert!(first.snapshots_written >= 2);
        assert!(first.restored_from.is_none());
        let (second, resumed_events) = serve(&s, &cfg, &(lines[4..].join("\n") + "\n"));
        assert_eq!(second.restored_from, Some(dir.join(SNAP_LATEST)));
        assert_eq!(second.total_slots, 8);

        // The resumed session's final gauges equal the uninterrupted
        // run's, byte for byte — snapshots carry metrics and watchdog.
        assert_eq!(last_status(&resumed_events), last_status(&reference));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_latest_snapshot_falls_back_to_prev() {
        let s = scenario();
        let (nodes, sessions) = dims(&s);
        let dir =
            std::env::temp_dir().join(format!("greencell-serve-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            snapshot_every: 1,
            state_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let input: String = (0..3)
            .map(|t| obs_line(nodes, sessions, t) + "\n")
            .collect();
        let (first, _) = serve(&s, &cfg, &input);
        assert!(first.snapshots_written >= 3);

        // Tear the newest generation; startup must quarantine it and
        // restore the previous one.
        let latest = dir.join(SNAP_LATEST);
        let text = std::fs::read_to_string(&latest).expect("read latest");
        std::fs::write(&latest, &text[..text.len() / 2]).expect("tear latest");
        let (second, events) = serve(&s, &cfg, "{\"cmd\":\"stop\"}\n");
        assert_eq!(second.restored_from, Some(dir.join(SNAP_PREV)));
        assert_eq!(second.quarantined.len(), 1);
        assert!(events.contains("\"event\":\"quarantine\""));
        assert!(dir.join(format!("{SNAP_LATEST}.corrupt")).exists());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
