//! Time-slotted simulator and experiment harness for the ICDCS 2014
//! evaluation (paper §VI).
//!
//! * [`Scenario`] — a complete experiment description; [`Scenario::paper`]
//!   encodes every §VI parameter (2000 m × 2000 m, 2 BSs, 20 users, 1+4
//!   bands, `Γ = 1`, `η = 10⁻²⁰` W/Hz, `f(P) = 0.8P² + 0.2P`, …) and
//!   documents the handful the paper leaves unspecified.
//! * [`Architecture`] — the four systems of Fig. 2(f): the proposed
//!   scheme, multi-hop without renewables, one-hop with renewables, and
//!   one-hop without renewables.
//! * [`Simulator`] — drives a [`greencell_core::Controller`] (and
//!   optionally the relaxed lower-bound controller on the *same* random
//!   observations) and collects [`RunMetrics`].
//! * [`experiments`] — one runner per figure, each returning the exact
//!   rows/series the paper plots; the `fig2a`/`fig2bc`/`fig2de`/`fig2f`
//!   binaries print them.
//!
//! # Examples
//!
//! ```
//! use greencell_sim::{Scenario, Simulator};
//!
//! let scenario = Scenario::tiny(42); // small network for quick runs
//! let mut sim = Simulator::new(&scenario)?;
//! let metrics = sim.run()?;
//! assert_eq!(metrics.cost_series().len(), scenario.horizon);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
pub mod checkpoint;
pub mod distrib;
mod engine;
pub mod experiments;
pub mod faults;
pub mod frontier;
pub mod fsio;
mod metrics;
pub mod report;
pub mod scale;
mod scenario;
pub mod serve;
pub mod snapshot;
pub mod sweep;
pub mod trace;

pub use arch::Architecture;
pub use checkpoint::{
    run_sweep_checkpointed, run_sweep_checkpointed_stats, CheckpointStats, CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
};
pub use distrib::{
    prepare_work_dir, run_sweep_distributed, run_sweep_distributed_stats, run_worker,
    DistribOptions, DistribStats, WorkerCommand, WorkerStats,
};
pub use engine::{SimError, Simulator};
pub use faults::{FaultPlan, FaultSpec, StabilityWatchdog, WatchdogReport, WatchdogState};
pub use frontier::{
    run_frontier, FrontierEngine, FrontierMap, FrontierOptions, FrontierPoint, FrontierStats,
};
pub use fsio::write_text_atomic;
pub use metrics::RunMetrics;
pub use scale::{CitySim, ClusterSet, ShardedController};
pub use scenario::{
    DemandModel, DiurnalProfile, GridModel, Placement, Scenario, ScenarioLayout, TouPricing,
};
pub use serve::{run_serve, ServeConfig, ServeSummary, StopReason, SNAP_LATEST, SNAP_PREV};
pub use snapshot::{fnv1a_64, SimSnapshot, SNAPSHOT_FORMAT, SNAPSHOT_VERSION};
pub use sweep::{
    derive_point_seed, run_point, run_point_traced, run_sweep, run_sweep_reseeded,
    run_sweep_traced, write_telemetry, PointOutcome, RunTelemetry, SweepOptions, SweepPoint,
    SweepReport,
};
pub use trace::{
    check_trace_determinism, trace_points, trace_scenario, write_trace_artifacts, TracedRun,
};
