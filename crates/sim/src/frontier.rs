//! Adaptive V-frontier search.
//!
//! The paper's headline trade-off (Thm. 2, Fig. 2) is a frontier: average
//! energy cost falls as `O(1/V)` while average backlog grows as `O(V)`.
//! A fixed V grid wastes simulations on the flat parts of that curve and
//! under-resolves the bend. [`run_frontier`] instead starts from a small
//! log-spaced grid and repeatedly **bisects in log-V space wherever the
//! curve jumps**: a segment whose endpoints differ by more than
//! [`FrontierOptions::max_gap`] (Chebyshev distance over *normalized*
//! cost and backlog) gets a new point at the geometric mean of its V
//! endpoints. Refinement stops when every segment is within tolerance
//! (converged) or the simulation budget is spent.
//!
//! Every point runs under common random numbers (the base scenario's seed
//! is reused, `V` is the only change), so the frontier is the paper's
//! controlled comparison, and the whole search is deterministic: same
//! scenario + options → same points, same JSON/CSV bytes. Points can be
//! evaluated in-process ([`FrontierEngine::InProcess`]) or by the
//! multi-process work-stealing driver ([`FrontierEngine::Distributed`],
//! see [`crate::distrib`]) — the two produce identical maps.

use crate::distrib::{run_sweep_distributed, DistribOptions};
use crate::snapshot::fingerprint_debug;
use crate::sweep::{json_f64, run_sweep, PointOutcome, SweepOptions, SweepPoint};
use crate::{Scenario, SimError};
use std::path::PathBuf;

/// Frontier-search knobs. Validated up front: a bad knob is a
/// [`SimError::InvalidConfig`], never a silently degenerate search.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierOptions {
    /// Smallest Lyapunov weight (> 0).
    pub v_min: f64,
    /// Largest Lyapunov weight (> `v_min`).
    pub v_max: f64,
    /// Refinement tolerance: a segment is bisected while its endpoints'
    /// normalized (cost, backlog) Chebyshev distance exceeds this.
    pub max_gap: f64,
    /// Hard ceiling on total simulation points (≥ `init_points`).
    pub budget: usize,
    /// Size of the initial log-spaced grid, endpoints included (≥ 2).
    pub init_points: usize,
}

impl FrontierOptions {
    /// Options with the default tolerance (0.25), budget (32) and initial
    /// grid (5 points).
    #[must_use]
    pub fn new(v_min: f64, v_max: f64) -> Self {
        Self {
            v_min,
            v_max,
            max_gap: 0.25,
            budget: 32,
            init_points: 5,
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        let bad = |detail: String| Err(SimError::InvalidConfig { detail });
        if !(self.v_min.is_finite() && self.v_min > 0.0) {
            return bad(format!(
                "frontier v_min must be finite and positive, got {}",
                self.v_min
            ));
        }
        if !(self.v_max.is_finite() && self.v_max > self.v_min) {
            return bad(format!(
                "frontier V range is empty or inverted: v_min {} v_max {}",
                self.v_min, self.v_max
            ));
        }
        if !(self.max_gap.is_finite() && self.max_gap > 0.0) {
            return bad(format!(
                "frontier max_gap must be finite and positive, got {}",
                self.max_gap
            ));
        }
        if self.init_points < 2 {
            return bad(format!(
                "frontier needs at least 2 initial points to form a segment, got {}",
                self.init_points
            ));
        }
        if self.budget < self.init_points {
            return bad(format!(
                "frontier budget {} cannot cover the initial grid of {} points",
                self.budget, self.init_points
            ));
        }
        Ok(())
    }
}

/// How frontier points are simulated.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontierEngine {
    /// [`crate::sweep::run_sweep`] in this process.
    InProcess(SweepOptions),
    /// The multi-process work-stealing driver; each refinement round uses
    /// `work_dir/round<k>` as its work queue.
    Distributed {
        /// Worker-fleet configuration.
        opts: DistribOptions,
        /// Parent directory for the per-round work queues.
        work_dir: PathBuf,
    },
}

/// One evaluated point on the cost-vs-backlog frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The Lyapunov weight.
    pub v: f64,
    /// The sweep label (`V=<value in e-notation>`).
    pub label: String,
    /// Time-averaged energy cost (Fig. 2(e)'s y-axis).
    pub avg_cost: f64,
    /// Time-averaged total data backlog, BSs + users, packets.
    pub avg_backlog: f64,
    /// Refinement round that placed this point (0 = initial grid).
    pub round: usize,
}

/// How the search went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierStats {
    /// Simulation points evaluated (== final map size).
    pub sims_run: usize,
    /// Refinement rounds after the initial grid.
    pub rounds: usize,
    /// Whether every segment ended within `max_gap` (vs budget exhausted).
    pub converged: bool,
    /// The largest remaining normalized segment gap.
    pub worst_gap: f64,
}

/// A complete frontier map: points sorted by `V`, plus search telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierMap {
    /// Evaluated points in ascending `V` order.
    pub points: Vec<FrontierPoint>,
    /// The options the search ran with.
    pub options: FrontierOptions,
    /// Fingerprint of the base scenario (seed included).
    pub scenario_fp: u64,
    /// Search telemetry.
    pub stats: FrontierStats,
}

impl FrontierMap {
    /// Deterministic JSON artifact (same map → same bytes).
    #[must_use]
    pub fn json(&self) -> String {
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"v\": {}, \"label\": \"{}\", \"avg_cost\": {}, \"avg_backlog\": {}, \"round\": {}}}",
                    json_f64(p.v),
                    crate::sweep::json_escape(&p.label),
                    json_f64(p.avg_cost),
                    json_f64(p.avg_backlog),
                    p.round
                )
            })
            .collect();
        format!(
            "{{\"scenario_fp\": \"0x{:016x}\", \"v_min\": {}, \"v_max\": {}, \"max_gap\": {}, \
             \"budget\": {}, \"init_points\": {}, \"sims_run\": {}, \"rounds\": {}, \
             \"converged\": {}, \"worst_gap\": {}, \"points\": [\n{}\n]}}\n",
            self.scenario_fp,
            json_f64(self.options.v_min),
            json_f64(self.options.v_max),
            json_f64(self.options.max_gap),
            self.options.budget,
            self.options.init_points,
            self.stats.sims_run,
            self.stats.rounds,
            self.stats.converged,
            json_f64(self.stats.worst_gap),
            rows.join(",\n")
        )
    }

    /// Deterministic CSV artifact (one row per point, ascending `V`).
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("v,avg_cost,avg_backlog,round\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{}\n",
                p.v, p.avg_cost, p.avg_backlog, p.round
            ));
        }
        out
    }

    /// The largest normalized gap between adjacent points (0 for < 2
    /// points) — how well the map meets its own tolerance.
    #[must_use]
    pub fn worst_gap(&self) -> f64 {
        let coords: Vec<(f64, f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.v, p.avg_cost, p.avg_backlog))
            .collect();
        segment_gaps(&coords).into_iter().fold(0.0_f64, f64::max)
    }
}

/// The initial log-spaced grid over `[v_min, v_max]`, endpoints included.
fn log_grid(v_min: f64, v_max: f64, n: usize) -> Vec<f64> {
    let (lo, hi) = (v_min.ln(), v_max.ln());
    (0..n)
        .map(|i| {
            if i == 0 {
                v_min
            } else if i == n - 1 {
                v_max
            } else {
                (lo + (hi - lo) * (i as f64) / ((n - 1) as f64)).exp()
            }
        })
        .collect()
}

/// An axis whose observed range is below this fraction of its own
/// magnitude is treated as flat. Without this, an axis that is constant
/// up to floating-point noise (e.g. average cost on a short horizon,
/// varying at the 1e-6 relative level across V) gets range-normalized
/// into gaps of ~1.0 that bisection can never shrink — the search would
/// chase numerical noise until the budget died.
const FLAT_AXIS_RTOL: f64 = 1e-3;

/// Normalized Chebyshev gaps between adjacent points of a sorted
/// `(v, cost, backlog)` frontier. Cost and backlog are each normalized by
/// their observed range (a flat or noise-level axis contributes zero, see
/// [`FLAT_AXIS_RTOL`]), so one loud axis cannot drown the other and the
/// tolerance is scale-free.
fn segment_gaps(coords: &[(f64, f64, f64)]) -> Vec<f64> {
    if coords.len() < 2 {
        return Vec::new();
    }
    let range = |f: fn(&(f64, f64, f64)) -> f64| -> f64 {
        let lo = coords.iter().map(f).fold(f64::INFINITY, f64::min);
        let hi = coords.iter().map(f).fold(f64::NEG_INFINITY, f64::max);
        let r = hi - lo;
        let scale = lo.abs().max(hi.abs());
        if r.is_finite() && r > FLAT_AXIS_RTOL * scale && r > 0.0 {
            r
        } else {
            f64::INFINITY // flat (or noise-level) axis: all gaps become 0
        }
    };
    let (cost_range, backlog_range) = (range(|c| c.1), range(|c| c.2));
    coords
        .windows(2)
        .map(|w| {
            let dc = (w[1].1 - w[0].1).abs() / cost_range;
            let db = (w[1].2 - w[0].2).abs() / backlog_range;
            dc.max(db)
        })
        .collect()
}

/// The bisection V values for the current frontier: the geometric-mean
/// midpoints of every segment whose gap exceeds `max_gap`, widest gaps
/// first, capped at `budget_left`, deduplicated against `coords` and
/// against degenerate midpoints (float fixed points).
fn refine_candidates(coords: &[(f64, f64, f64)], max_gap: f64, budget_left: usize) -> Vec<f64> {
    let gaps = segment_gaps(coords);
    let mut ranked: Vec<(f64, f64)> = gaps
        .iter()
        .zip(coords.windows(2))
        .filter(|(&gap, _)| gap > max_gap)
        .map(|(&gap, w)| {
            let mid = (w[0].0 * w[1].0).sqrt();
            (gap, mid)
        })
        .filter(|&(_, mid)| coords.iter().all(|c| c.0 != mid) && mid.is_finite() && mid > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.total_cmp(&b.1)));
    let mut out: Vec<f64> = Vec::new();
    for (_, mid) in ranked {
        if out.len() >= budget_left {
            break;
        }
        if !out.contains(&mid) {
            out.push(mid);
        }
    }
    out
}

fn evaluate(
    base: &Scenario,
    vs: &[f64],
    engine: &FrontierEngine,
    round: usize,
) -> Result<Vec<PointOutcome>, SimError> {
    let points: Vec<SweepPoint> = vs
        .iter()
        .map(|&v| {
            let mut scenario = base.clone();
            scenario.v = v;
            SweepPoint::new(format!("V={v:e}"), scenario)
        })
        .collect();
    let report = match engine {
        FrontierEngine::InProcess(opts) => run_sweep(&points, opts)?,
        FrontierEngine::Distributed { opts, work_dir } => {
            run_sweep_distributed(&points, opts, &work_dir.join(format!("round{round}")))?
        }
    };
    Ok(report.outcomes)
}

fn frontier_point(v: f64, outcome: &PointOutcome, round: usize) -> FrontierPoint {
    FrontierPoint {
        v,
        label: outcome.label.clone(),
        avg_cost: outcome.metrics.average_cost(),
        avg_backlog: outcome.metrics.backlog_bs_series().mean()
            + outcome.metrics.backlog_users_series().mean(),
        round,
    }
}

/// Runs the adaptive frontier search for `base` (its `v` field is
/// ignored; its seed is reused at every point — common random numbers).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for invalid options, and
/// propagates simulation or (for the distributed engine) work-queue
/// failures.
pub fn run_frontier(
    base: &Scenario,
    options: &FrontierOptions,
    engine: &FrontierEngine,
) -> Result<FrontierMap, SimError> {
    options.validate()?;
    let mut points: Vec<FrontierPoint> = Vec::new();
    let mut rounds = 0usize;

    let grid = log_grid(options.v_min, options.v_max, options.init_points);
    for (v, outcome) in grid.iter().zip(evaluate(base, &grid, engine, 0)?.iter()) {
        points.push(frontier_point(*v, outcome, 0));
    }

    let converged = loop {
        points.sort_by(|a, b| a.v.total_cmp(&b.v));
        let coords: Vec<(f64, f64, f64)> = points
            .iter()
            .map(|p| (p.v, p.avg_cost, p.avg_backlog))
            .collect();
        let budget_left = options.budget.saturating_sub(points.len());
        let wanted = refine_candidates(&coords, options.max_gap, usize::MAX);
        if wanted.is_empty() {
            break true; // every segment within tolerance
        }
        if budget_left == 0 {
            break false; // work remains but the budget is spent
        }
        let vs = refine_candidates(&coords, options.max_gap, budget_left);
        rounds += 1;
        for (v, outcome) in vs.iter().zip(evaluate(base, &vs, engine, rounds)?.iter()) {
            points.push(frontier_point(*v, outcome, rounds));
        }
    };

    points.sort_by(|a, b| a.v.total_cmp(&b.v));
    let mut map = FrontierMap {
        points,
        options: options.clone(),
        scenario_fp: fingerprint_debug(base),
        stats: FrontierStats {
            sims_run: 0,
            rounds,
            converged,
            worst_gap: 0.0,
        },
    };
    map.stats.sims_run = map.points.len();
    map.stats.worst_gap = map.worst_gap();
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_grid_hits_endpoints_exactly() {
        let g = log_grid(1e4, 1e6, 5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], 1e4);
        assert_eq!(g[4], 1e6);
        for w in g.windows(2) {
            assert!(w[1] > w[0], "grid must be strictly increasing: {g:?}");
        }
    }

    #[test]
    fn segment_gaps_are_scale_free() {
        // Cost spans 1000..2000, backlog 0..1 — each axis normalized by
        // its own range, so the uniform staircase has uniform gaps.
        let coords = vec![
            (1.0, 2000.0, 0.0),
            (10.0, 1500.0, 0.5),
            (100.0, 1000.0, 1.0),
        ];
        let gaps = segment_gaps(&coords);
        assert_eq!(gaps.len(), 2);
        for g in gaps {
            assert!((g - 0.5).abs() < 1e-12, "gap {g} should be 0.5");
        }
    }

    #[test]
    fn flat_axes_produce_zero_gaps() {
        let coords = vec![(1.0, 5.0, 3.0), (2.0, 5.0, 3.0)];
        assert_eq!(segment_gaps(&coords), vec![0.0]);
    }

    #[test]
    fn noise_level_axes_count_as_flat() {
        // Cost varies by 1e-6 relative — floating-point noise, not
        // structure. The backlog axis still registers in full.
        let coords = vec![
            (1.0, 0.012000000, 0.0),
            (10.0, 0.012000012, 100.0),
            (100.0, 0.012000004, 200.0),
        ];
        let gaps = segment_gaps(&coords);
        for g in gaps {
            assert!(
                (g - 0.5).abs() < 1e-9,
                "backlog alone should drive the gap, got {g}"
            );
        }
    }

    #[test]
    fn refine_bisects_widest_gap_first_at_geometric_mean() {
        // Backlog jumps 0 → 0.9 across the first segment, 0.9 → 1.0 over
        // the second; only the first exceeds max_gap = 0.5.
        let coords = vec![(1.0, 0.0, 0.0), (100.0, 0.0, 0.9), (10000.0, 0.0, 1.0)];
        let vs = refine_candidates(&coords, 0.5, usize::MAX);
        assert_eq!(vs, vec![10.0]); // sqrt(1 * 100)
    }

    #[test]
    fn refine_respects_budget() {
        let coords = vec![(1.0, 0.0, 0.0), (100.0, 0.0, 0.5), (10000.0, 0.0, 1.0)];
        let vs = refine_candidates(&coords, 0.1, 1);
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn bad_options_are_typed_errors() {
        let base = crate::Scenario::tiny(1);
        let engine = FrontierEngine::InProcess(SweepOptions::serial());
        for (opts, needle) in [
            (FrontierOptions::new(0.0, 1e6), "v_min"),
            (FrontierOptions::new(1e6, 1e4), "inverted"),
            (
                FrontierOptions {
                    max_gap: 0.0,
                    ..FrontierOptions::new(1e4, 1e6)
                },
                "max_gap",
            ),
            (
                FrontierOptions {
                    init_points: 1,
                    ..FrontierOptions::new(1e4, 1e6)
                },
                "initial points",
            ),
            (
                FrontierOptions {
                    budget: 2,
                    ..FrontierOptions::new(1e4, 1e6)
                },
                "budget",
            ),
        ] {
            let err = run_frontier(&base, &opts, &engine).expect_err("must be rejected");
            match err {
                SimError::InvalidConfig { detail } => {
                    assert!(detail.contains(needle), "`{detail}` should name `{needle}`");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }
}
