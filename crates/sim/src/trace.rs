//! High-level tracing entry points: run a scenario (or a sweep) with
//! tracing on, write the exported artifacts under `results/`, and verify
//! the determinism contract — shared by the `trace_run` binary, the
//! `greencell trace` CLI subcommand, and CI.

use crate::sweep::{run_sweep_traced, SweepOptions, SweepPoint, SweepReport};
use crate::{Scenario, SimError};
use greencell_trace::{json, RingSink, TraceBundle};
use std::path::{Path, PathBuf};

/// A traced sweep: the usual per-point outcomes plus the merged trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedRun {
    /// Per-point outcomes and execution facts.
    pub report: SweepReport,
    /// The merged trace, tracks in point order.
    pub bundle: TraceBundle,
}

/// Runs `scenario` once with tracing on (a one-point sweep), using the
/// default ring capacity.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn trace_scenario(scenario: &Scenario, label: &str) -> Result<TracedRun, SimError> {
    trace_points(
        &[SweepPoint::new(label, scenario.clone())],
        &SweepOptions::serial(),
        RingSink::DEFAULT_CAPACITY,
    )
}

/// Runs a traced sweep over `points`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn trace_points(
    points: &[SweepPoint],
    opts: &SweepOptions,
    capacity: usize,
) -> Result<TracedRun, SimError> {
    let (report, bundle) = run_sweep_traced(points, opts, capacity)?;
    Ok(TracedRun { report, bundle })
}

/// Writes the three trace artifacts for `bundle` under `dir`:
/// `trace_<stem>.json` (chrome://tracing, Perfetto-loadable),
/// `trace_<stem>_deterministic.json` (the byte-stable section), and
/// `trace_<stem>_timeseries.csv` (Fig. 2 axes). Returns the paths.
///
/// # Errors
///
/// Returns [`SimError::Io`] on I/O failure.
pub fn write_trace_artifacts(
    bundle: &TraceBundle,
    dir: impl AsRef<Path>,
    stem: &str,
) -> Result<Vec<PathBuf>, SimError> {
    let dir = dir.as_ref();
    let chrome = dir.join(format!("trace_{stem}.json"));
    let deterministic = dir.join(format!("trace_{stem}_deterministic.json"));
    let timeseries = dir.join(format!("trace_{stem}_timeseries.csv"));
    crate::sweep::write_text(&chrome, &bundle.chrome_trace_json())?;
    crate::sweep::write_text(&deterministic, &bundle.deterministic_json())?;
    crate::sweep::write_text(&timeseries, &bundle.timeseries_csv())?;
    Ok(vec![chrome, deterministic, timeseries])
}

/// Verifies the tracing determinism contract on `points`:
///
/// 1. the chrome-trace JSON export parses as JSON, and
/// 2. the deterministic trace section is byte-identical between a
///    1-worker and a `workers`-worker run (as is the per-point metric
///    fingerprint).
///
/// Returns the serial run on success, so callers can reuse it for
/// artifact writing without paying a third run.
///
/// # Errors
///
/// [`SimError::Serialize`] describing the first violated check, or any
/// underlying simulation failure.
pub fn check_trace_determinism(
    points: &[SweepPoint],
    workers: usize,
    capacity: usize,
) -> Result<TracedRun, SimError> {
    let serial = trace_points(points, &SweepOptions::serial(), capacity)?;
    let fanned = trace_points(points, &SweepOptions::with_threads(workers), capacity)?;
    let a = serial.bundle.deterministic_json();
    let b = fanned.bundle.deterministic_json();
    if a != b {
        return Err(SimError::Serialize(format!(
            "deterministic trace section differs between 1 and {workers} workers \
             ({} vs {} bytes)",
            a.len(),
            b.len()
        )));
    }
    for (x, y) in serial.report.outcomes.iter().zip(&fanned.report.outcomes) {
        if x.metrics != y.metrics {
            return Err(SimError::Serialize(format!(
                "metrics for point '{}' differ between 1 and {workers} workers",
                x.label
            )));
        }
    }
    json::parse(&serial.bundle.chrome_trace_json())
        .map_err(|e| SimError::Serialize(format!("chrome trace JSON does not parse: {e}")))?;
    json::parse(&a)
        .map_err(|e| SimError::Serialize(format!("deterministic JSON does not parse: {e}")))?;
    Ok(serial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greencell_trace::Stage;

    #[test]
    fn traced_scenario_produces_all_sections() {
        let run = trace_scenario(&Scenario::tiny(5), "tiny").unwrap();
        assert_eq!(run.bundle.tracks.len(), 1);
        let summary = run.bundle.summary();
        // Spans for every stage, one whole-slot span per slot.
        let horizon = Scenario::tiny(5).horizon as u64;
        assert_eq!(summary.stage(Stage::Slot).unwrap().count(), horizon);
        for stage in [Stage::S1, Stage::S2, Stage::S3, Stage::S4, Stage::Advance] {
            assert!(
                summary.stage(stage).unwrap().count() >= horizon,
                "missing spans for {stage}"
            );
        }
        // Fig. 2 gauges sampled every slot.
        for name in [
            greencell_trace::names::COST,
            greencell_trace::names::BACKLOG_BS,
            greencell_trace::names::BUFFER_USERS_WH,
            greencell_trace::names::DRIFT,
            greencell_trace::names::PENALTY,
        ] {
            assert_eq!(summary.gauges[name].count(), horizon, "gauge {name}");
        }
        // The metrics must be unchanged by tracing.
        let untraced = crate::run_point("tiny", &Scenario::tiny(5)).unwrap();
        assert_eq!(run.report.outcomes[0].metrics, untraced.metrics);
    }

    #[test]
    fn determinism_check_passes_on_a_small_batch() {
        let points: Vec<SweepPoint> = (0..4)
            .map(|i| SweepPoint::new(format!("p{i}"), Scenario::tiny(300 + i)))
            .collect();
        let run = check_trace_determinism(&points, 4, 1 << 16).unwrap();
        assert_eq!(run.bundle.tracks.len(), 4);
    }

    #[test]
    fn artifacts_write_and_parse() {
        let run = trace_scenario(&Scenario::tiny(9), "t9").unwrap();
        let dir = std::env::temp_dir().join("greencell_trace_test");
        let paths = write_trace_artifacts(&run.bundle, &dir, "t9").unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            let text = std::fs::read_to_string(p).unwrap();
            assert!(!text.is_empty());
            if p.extension().is_some_and(|e| e == "json") {
                json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
