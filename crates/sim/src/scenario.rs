//! Experiment descriptions, with the paper's §VI configuration as the
//! canonical instance.

use crate::Architecture;
use greencell_core::{ControllerConfig, EnergyConfig, NodeEnergyConfig, SchedulerKind};

use greencell_energy::{Battery, NodeEnergyModel, QuadraticCost};
use greencell_net::{
    BandId, BandSet, Network, NetworkBuilder, NetworkError, NodeKind, PathLossModel, Point,
};
use greencell_phy::PhyConfig;
use greencell_stochastic::Rng;
use greencell_units::{Bandwidth, DataRate, Energy, PacketSize, Packets, Power, TimeDelta};

/// How the per-slot session demand `v_s(t)` is generated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DemandModel {
    /// The paper's evaluation: the same packet count every slot.
    #[default]
    Constant,
    /// Extension: Poisson arrivals with the nominal demand as the mean —
    /// same average load, bursty slots.
    Poisson,
}

/// How user grid connectivity `ξ_i(t)` evolves.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GridModel {
    /// The paper's model: i.i.d. Bernoulli with
    /// [`Scenario::user_grid_probability`].
    #[default]
    Iid,
    /// Extension: a sticky two-state Markov chain (connectivity bursts) —
    /// `stay_on`/`stay_off` are the self-transition probabilities.
    Markov {
        /// `P(on → on)`.
        stay_on: f64,
        /// `P(off → off)`.
        stay_off: f64,
    },
}

/// How user positions are drawn inside the deployment area.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Placement {
    /// The paper's model: i.i.d. uniform over the square area.
    #[default]
    Uniform,
    /// City-scale extension: each user joins a Gaussian hotspot centred on
    /// a uniformly chosen base station with probability `fraction`, and is
    /// placed uniformly otherwise. Hotspot offsets are radially clamped to
    /// `2·sigma_m`, so `fraction = 1.0` guarantees every user sits within
    /// `2σ` of some BS — the property cluster decomposition relies on.
    Hotspots {
        /// Hotspot standard deviation in meters.
        sigma_m: f64,
        /// Probability a user belongs to a hotspot (vs uniform background).
        fraction: f64,
    },
}

/// A per-cell diurnal traffic profile (city-scale extension knob).
///
/// Cell `c` of `n` sees its nominal session demand scaled by
/// `min + (1 − min) · ½(1 + cos(2π(t/period − c/n)))` — a cosine
/// day/night cycle with per-cell phase offsets, as in the large-scale BS
/// operation literature (PAPERS.md: Che/Duan/Zhang).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalProfile {
    /// Slots per full day/night cycle.
    pub period_slots: usize,
    /// Trough load as a fraction of the nominal demand, in `[0, 1]`.
    pub min_fraction: f64,
}

impl DiurnalProfile {
    /// The demand multiplier for cell `cell` of `n_cells` at slot `t`.
    #[must_use]
    pub fn factor(&self, t: usize, cell: usize, n_cells: usize) -> f64 {
        if self.period_slots == 0 || n_cells == 0 {
            return 1.0;
        }
        let phase = t as f64 / self.period_slots as f64 - cell as f64 / n_cells as f64;
        let wave = 0.5 * (1.0 + (std::f64::consts::TAU * phase).cos());
        let min = self.min_fraction.clamp(0.0, 1.0);
        min + (1.0 - min) * wave
    }

    /// Scales a nominal packet demand by [`DiurnalProfile::factor`],
    /// rounding to the nearest whole packet.
    #[must_use]
    pub fn scale(&self, nominal: Packets, t: usize, cell: usize, n_cells: usize) -> Packets {
        let scaled = (nominal.count() as f64 * self.factor(t, cell, n_cells)).round();
        Packets::new(scaled as u64)
    }
}

/// Time-of-use electricity pricing (extension knob).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TouPricing {
    /// The paper's flat tariff: every slot costs `f(P(t))`.
    #[default]
    Flat,
    /// A periodic peak/off-peak tariff: within each period of
    /// `period_slots`, the first `peak_slots` cost
    /// `peak_multiplier · f(P)`, the rest cost `f(P)`.
    Periodic {
        /// Slots per tariff period.
        period_slots: usize,
        /// Leading slots of each period billed at the peak rate.
        peak_slots: usize,
        /// Peak price multiplier (≥ 0; > 1 for a peak surcharge).
        peak_multiplier: f64,
    },
}

impl TouPricing {
    /// The price multiplier in effect at slot `t`.
    #[must_use]
    pub fn multiplier(&self, t: usize) -> f64 {
        match *self {
            Self::Flat => 1.0,
            Self::Periodic {
                period_slots,
                peak_slots,
                peak_multiplier,
            } => {
                if period_slots == 0 {
                    return 1.0;
                }
                if t % period_slots < peak_slots.min(period_slots) {
                    peak_multiplier
                } else {
                    1.0
                }
            }
        }
    }
}

/// A complete, self-contained experiment description.
///
/// [`Scenario::paper`] reproduces §VI; every parameter the paper states is
/// taken verbatim, and every parameter the paper *omits* is set here with a
/// documented default (see the field docs marked "unspecified in the
/// paper"). Clone-and-mutate to build sweeps:
///
/// ```
/// use greencell_sim::Scenario;
///
/// let mut s = Scenario::paper(7);
/// s.v = 3e5;
/// s.horizon = 50;
/// assert_eq!(s.build_network().unwrap().topology().user_count(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Square deployment area side, meters (paper: 2000).
    pub area_m: f64,
    /// Base-station coordinates (paper: (500, 500) and (1500, 500)).
    pub bs_positions: Vec<(f64, f64)>,
    /// Number of uniformly placed users (paper: 20).
    pub users: usize,
    /// Fixed cellular band bandwidth in MHz (paper: 1 MHz).
    pub cellular_band_mhz: f64,
    /// Extra bands with per-slot bandwidth U[lo, hi] MHz (paper: 4 bands
    /// U[1, 2]).
    pub random_bands: Vec<(f64, f64)>,
    /// Probability a given extra band is available at a given user
    /// (*unspecified in the paper* — "a random subset"; default 0.5). The
    /// cellular band is available everywhere; BSs access all bands.
    pub user_band_probability: f64,
    /// Number of downlink sessions (*unspecified in the paper*; default 5),
    /// each destined to a distinct random user.
    pub sessions: usize,
    /// Per-session demand (paper: 100 kbps for every session).
    pub session_demand: DataRate,
    /// Optional heterogeneous per-session demands (kbps), overriding
    /// [`Scenario::session_demand`] session-by-session; shorter lists wrap
    /// around (extension knob; default `None` = the paper's uniform load).
    pub session_demands_kbps: Option<Vec<f64>>,
    /// Path-loss constant `C` (paper: 62.5).
    pub path_loss_c: f64,
    /// Path-loss exponent `γ` (paper: 4).
    pub path_loss_gamma: f64,
    /// SINR threshold `Γ`, linear (paper: 1).
    pub sinr_threshold: f64,
    /// Noise density `η` in W/Hz (paper: 10⁻²⁰).
    pub noise_density: f64,
    /// User transmit power cap (paper: 1 W).
    pub user_max_power: Power,
    /// BS transmit power cap (paper: 20 W).
    pub bs_max_power: Power,
    /// User renewable output upper bound (paper: U[0, 1] W).
    pub user_renewable_max: Power,
    /// BS renewable output upper bound (paper: U[0, 15] W).
    pub bs_renewable_max: Power,
    /// User battery charge/discharge per-slot limit (paper: 0.06 kWh).
    pub user_charge_limit: Energy,
    /// BS battery charge/discharge per-slot limit (paper: 0.1 kWh).
    pub bs_charge_limit: Energy,
    /// User battery capacity (*unspecified in the paper*; default 0.5 kWh —
    /// must satisfy constraint (13): ≥ 0.12 kWh).
    pub user_battery_capacity: Energy,
    /// BS battery capacity (*unspecified*; default 1 kWh).
    pub bs_battery_capacity: Energy,
    /// Initial battery fill fraction in [0, 1] (*unspecified*; default 0.5).
    pub initial_battery_fraction: f64,
    /// Battery charge efficiency `η ∈ (0, 1]` (extension knob; default 1 =
    /// the paper's lossless Eq. (4); real Li-ion round trips are ~0.9).
    pub battery_efficiency: f64,
    /// Per-slot grid draw limit `p^max` (paper: 0.2 kWh, all nodes).
    pub grid_limit: Energy,
    /// User grid-connectivity probability `P(ξ_i(t) = 1)` (*unspecified*;
    /// default 0.7). BSs are always connected.
    pub user_grid_probability: f64,
    /// Receive power `P^recv` (*unspecified*; default 100 mW).
    pub recv_power: Power,
    /// Fixed BS overhead power `E^const + E^idle` per slot (*unspecified*;
    /// default 5 W — small enough that traffic energy stays visible, large
    /// enough that renewables cannot always cover it).
    pub bs_overhead_power: Power,
    /// Fixed user overhead power (*unspecified*; default 0 — a mobile
    /// device's idle draw is negligible at this model's energy scale, and
    /// a positive value would let an empty-battery, grid-disconnected,
    /// becalmed user deadlock the energy model on its own idle demand).
    pub user_overhead_power: Power,
    /// Cost function coefficients `(a, b, c)` (paper: 0.8, 0.2, 0).
    pub cost: (f64, f64, f64),
    /// The Lyapunov weight `V` (paper sweeps 1×10⁵ … 10×10⁵).
    pub v: f64,
    /// Admission reward `λ` (*unspecified*; default 0.02, which puts the
    /// admission threshold `λV` at the per-queue backlog scale of
    /// Fig. 2(b) so the V-sweep separates within the 100-slot horizon).
    pub lambda: f64,
    /// Admission burst `K^max` (*unspecified*; default 1000 packets).
    pub k_max: Packets,
    /// Packet size `δ` (*unspecified*; default 1250 bytes = 10 kbit, so
    /// 100 kbps = 10 packets/s).
    pub packet_size: PacketSize,
    /// Slot duration (paper: 1 minute).
    pub slot: TimeDelta,
    /// Horizon in slots (paper: T = 100).
    pub horizon: usize,
    /// Which S1 scheduler to use (default greedy; see DESIGN.md).
    pub scheduler: SchedulerKind,
    /// Which architecture to simulate.
    pub architecture: Architecture,
    /// Whether to co-run the relaxed lower-bound controller.
    pub track_lower_bound: bool,
    /// How session demand is generated (extension knob; default constant).
    pub demand_model: DemandModel,
    /// How user grid connectivity evolves (extension knob; default i.i.d.).
    pub grid_model: GridModel,
    /// Log-normal shadowing standard deviation in dB applied per link on
    /// top of the paper's pure path loss (extension knob; default 0 = the
    /// paper's model). Typical urban values: 4–8 dB.
    pub shadowing_sigma_db: f64,
    /// How user positions are drawn (city-scale knob; default uniform =
    /// the paper's model).
    pub placement: Placement,
    /// Interference pruning floor applied to the gain matrix: gains
    /// strictly below it become exact zeros (city-scale knob; default 0 =
    /// no pruning, bit-identical to the paper's dense matrix). Use
    /// [`Scenario::interference_gain_floor`] for the largest floor that
    /// provably cannot change scheduling feasibility or raise interference
    /// above thermal noise.
    pub gain_floor: f64,
    /// Optional per-cell diurnal traffic profile (city-scale knob; default
    /// `None` = the paper's stationary demand).
    pub diurnal: Option<DiurnalProfile>,
    /// Electricity tariff (extension knob; default flat, as in the paper).
    pub pricing: TouPricing,
    /// Which S4 energy policy to run (ablation knob; default the paper's
    /// marginal-price equilibrium).
    pub energy_policy: greencell_core::EnergyPolicy,
    /// Deterministic fault injection (robustness knob; default `None` =
    /// fault-free). The plan expands from the scenario seed, so faulted
    /// runs replay bit-identically.
    pub faults: Option<crate::faults::FaultSpec>,
    /// How the controller reacts to energy-management infeasibility
    /// (default graceful: walk the shed → grid-only → drop-schedule →
    /// safe-mode fallback ladder; strict aborts after shedding).
    pub degradation: greencell_core::DegradationPolicy,
    /// Optional base-station sleeping policy (dynamic-network knob;
    /// default `None` = every BS stays awake, bit-identical to the paper
    /// controller). Enable with [`Scenario::default_sleep_policy`].
    pub bs_sleep: Option<greencell_core::SleepPolicy>,
    /// Optional inter-BS renewable-energy cooperation (dynamic-network
    /// knob; default `None` = no transfers, bit-identical to the paper
    /// controller). Enable with [`Scenario::default_coop_policy`].
    pub energy_coop: Option<greencell_core::CoopPolicy>,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl Scenario {
    /// The paper's §VI configuration.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            area_m: 2000.0,
            bs_positions: vec![(500.0, 500.0), (1500.0, 500.0)],
            users: 20,
            cellular_band_mhz: 1.0,
            random_bands: vec![(1.0, 2.0); 4],
            user_band_probability: 0.5,
            sessions: 5,
            session_demand: DataRate::from_kilobits_per_second(100.0),
            session_demands_kbps: None,
            path_loss_c: 62.5,
            path_loss_gamma: 4.0,
            sinr_threshold: 1.0,
            noise_density: 1e-20,
            user_max_power: Power::from_watts(1.0),
            bs_max_power: Power::from_watts(20.0),
            user_renewable_max: Power::from_watts(1.0),
            bs_renewable_max: Power::from_watts(15.0),
            user_charge_limit: Energy::from_kilowatt_hours(0.06),
            bs_charge_limit: Energy::from_kilowatt_hours(0.1),
            user_battery_capacity: Energy::from_kilowatt_hours(0.5),
            bs_battery_capacity: Energy::from_kilowatt_hours(1.0),
            initial_battery_fraction: 0.5,
            battery_efficiency: 1.0,
            grid_limit: Energy::from_kilowatt_hours(0.2),
            user_grid_probability: 0.7,
            recv_power: Power::from_milliwatts(100.0),
            bs_overhead_power: Power::from_watts(5.0),
            user_overhead_power: Power::ZERO,
            cost: (0.8, 0.2, 0.0),
            v: 1e5,
            lambda: 0.02,
            k_max: Packets::new(1000),
            packet_size: PacketSize::from_bytes(1250),
            slot: TimeDelta::from_minutes(1.0),
            horizon: 100,
            scheduler: SchedulerKind::Greedy,
            architecture: Architecture::Proposed,
            track_lower_bound: false,
            demand_model: DemandModel::Constant,
            grid_model: GridModel::Iid,
            shadowing_sigma_db: 0.0,
            placement: Placement::Uniform,
            gain_floor: 0.0,
            diurnal: None,
            pricing: TouPricing::Flat,
            energy_policy: greencell_core::EnergyPolicy::MarginalPrice,
            faults: None,
            degradation: greencell_core::DegradationPolicy::Graceful,
            bs_sleep: None,
            energy_coop: None,
            seed,
        }
    }

    /// A small scenario (1 BS, 4 users, 2 bands, 2 sessions, 20 slots) for
    /// unit and integration tests.
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        let mut s = Self::paper(seed);
        s.area_m = 800.0;
        s.bs_positions = vec![(400.0, 400.0)];
        s.users = 4;
        s.random_bands = vec![(1.0, 2.0)];
        s.sessions = 2;
        s.horizon = 20;
        s
    }

    /// The Fig. 2(f) calibration of the paper scenario.
    ///
    /// Two documented substitutions isolate the architecture comparison
    /// (full rationale in EXPERIMENTS.md):
    ///
    /// * batteries start **full**, so the storage-filling transient —
    ///   identical across architectures by construction — does not swamp
    ///   the traffic-driven cost differences;
    /// * the noise density is raised to `3×10⁻¹⁷` W/Hz. At the paper's
    ///   `10⁻²⁰` W/Hz every transmit power is microwatts and *all*
    ///   architectures cost the same; at `3×10⁻¹⁷` the `d^γ` path-loss
    ///   scaling the paper's multi-hop narrative relies on actually moves
    ///   watts (a 2000 m one-hop link needs ~11.5 W — expensive but still
    ///   feasible under the 20 W cap, so one-hop keeps serving instead of
    ///   silently dropping traffic — while a 300 m hop needs ~6 mW).
    #[must_use]
    pub fn fig2f_calibrated(seed: u64) -> Self {
        let mut s = Self::paper(seed);
        s.initial_battery_fraction = 1.0;
        s.noise_density = 6e-17;
        s.recv_power = Power::from_milliwatts(10.0);
        s
    }

    /// Total number of bands (cellular + random).
    #[must_use]
    pub fn band_count(&self) -> usize {
        1 + self.random_bands.len()
    }

    /// A hard upper bound on any band's bandwidth (for the controller's
    /// `w_max`).
    #[must_use]
    pub fn max_bandwidth(&self) -> Bandwidth {
        let random_max = self
            .random_bands
            .iter()
            .map(|&(_, hi)| hi)
            .fold(0.0f64, f64::max);
        Bandwidth::from_megahertz(self.cellular_band_mhz.max(random_max))
    }

    /// The physical-layer configuration.
    #[must_use]
    pub fn phy(&self) -> PhyConfig {
        PhyConfig::new(self.sinr_threshold, self.noise_density)
    }

    /// Draws every random topology decision — positions, band subsets,
    /// session destinations, shadowing — **without** assembling the dense
    /// `n × n` gain matrix. Deterministic in `seed`, consuming the
    /// topology stream in exactly the order [`Scenario::build_network`]
    /// always has, so the two stay interchangeable.
    ///
    /// The layout is the city-scale entry point: `Θ(n)` in nodes, it is
    /// what the sharded controller decomposes into clusters before any
    /// `Θ(|cluster|²)` matrix exists.
    #[must_use]
    pub fn build_layout(&self) -> ScenarioLayout {
        let mut rng = Rng::seed_from(self.seed).split(); // topology stream
        let n_bs = self.bs_positions.len();
        let mut kinds = Vec::with_capacity(n_bs + self.users);
        let mut positions = Vec::with_capacity(n_bs + self.users);
        for &(x, y) in &self.bs_positions {
            kinds.push(NodeKind::BaseStation);
            positions.push(Point::new(x, y));
        }
        let mut hotspot_users = Vec::new();
        for u in 0..self.users {
            let p = match self.placement {
                Placement::Uniform => {
                    let x = rng.range_f64(0.0, self.area_m);
                    let y = rng.range_f64(0.0, self.area_m);
                    Point::new(x, y)
                }
                Placement::Hotspots { sigma_m, fraction } => {
                    if n_bs > 0 && rng.chance(fraction) {
                        hotspot_users.push(n_bs + u);
                        let (cx, cy) = self.bs_positions[rng.index(n_bs)];
                        // Box–Muller in polar form, radius clamped to 2σ so
                        // hotspot membership implies bounded BS distance.
                        let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
                        let u2 = rng.next_f64();
                        let r = (sigma_m * (-2.0 * u1.ln()).sqrt()).min(2.0 * sigma_m);
                        let theta = std::f64::consts::TAU * u2;
                        // Out-of-area offsets are *reflected* at the
                        // boundary rather than clamped: clamping puts an
                        // atom on the edges, and two users clamped to the
                        // same corner coincide exactly — a zero distance
                        // the path-loss model (rightly) rejects.
                        Point::new(
                            reflect_into(cx + r * theta.cos(), self.area_m),
                            reflect_into(cy + r * theta.sin(), self.area_m),
                        )
                    } else {
                        let x = rng.range_f64(0.0, self.area_m);
                        let y = rng.range_f64(0.0, self.area_m);
                        Point::new(x, y)
                    }
                }
            };
            kinds.push(NodeKind::User);
            positions.push(p);
        }
        // Cellular band (index 0) everywhere; each extra band available at
        // a user with probability `user_band_probability`. BSs keep full
        // spectrum access.
        let mut bands = vec![BandSet::all(self.band_count()); n_bs];
        for _ in 0..self.users {
            let mut set = BandSet::empty();
            set.insert(BandId::from_index(0));
            for m in 1..self.band_count() {
                if rng.chance(self.user_band_probability) {
                    set.insert(BandId::from_index(m));
                }
            }
            bands.push(set);
        }
        // Sessions to distinct random users. Under hotspot placement the
        // destination pool is the hotspot members (when any exist): with
        // `fraction = 1.0` that is everyone, and it keeps every session
        // endpoint BS-covered by construction.
        let mut dests: Vec<usize> = match self.placement {
            Placement::Hotspots { .. } if !hotspot_users.is_empty() => hotspot_users.clone(),
            _ => (n_bs..n_bs + self.users).collect(),
        };
        rng.shuffle(&mut dests);
        let mut sessions = Vec::with_capacity(self.sessions);
        for s in 0..self.sessions {
            let demand = match &self.session_demands_kbps {
                Some(rates) if !rates.is_empty() => {
                    DataRate::from_kilobits_per_second(rates[s % rates.len()])
                }
                _ => self.session_demand,
            };
            sessions.push((dests[s % dests.len()], demand));
        }
        // Optional log-normal shadowing, drawn after all other topology
        // randomness so the default (σ = 0) leaves existing streams — and
        // therefore every paper-scenario result — bit-identical.
        let mut shadowing_db = Vec::new();
        if self.shadowing_sigma_db > 0.0 {
            let n = kinds.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
                    let u2 = rng.next_f64();
                    let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    shadowing_db.push((i, j, self.shadowing_sigma_db * normal));
                }
            }
        }
        ScenarioLayout {
            kinds,
            positions,
            bands,
            sessions,
            shadowing_db,
        }
    }

    /// Builds the network: BSs at the configured positions, users placed
    /// per [`Scenario::placement`], per-user random band subsets, and
    /// sessions destined to distinct random users. Deterministic in
    /// `seed`. Assembles the dense gain matrix — use
    /// [`Scenario::build_layout`] plus the `scale` module's sharded path
    /// when `Θ(n²)` is infeasible.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkError`] from validation.
    pub fn build_network(&self) -> Result<Network, NetworkError> {
        self.build_layout().assemble(self)
    }

    /// The energy hardware of a single node (BS or user) — the unit the
    /// per-node [`Scenario::energy_config`] map is built from, exposed so
    /// sharded drivers can construct per-cluster configs with identical
    /// numerics.
    #[must_use]
    pub fn node_energy_config(&self, is_bs: bool) -> NodeEnergyConfig {
        let (capacity, limit, max_power) = if is_bs {
            (
                self.bs_battery_capacity,
                self.bs_charge_limit,
                self.bs_max_power,
            )
        } else {
            (
                self.user_battery_capacity,
                self.user_charge_limit,
                self.user_max_power,
            )
        };
        let overhead = if is_bs {
            self.bs_overhead_power
        } else {
            self.user_overhead_power
        };
        let mut battery = Battery::with_efficiency(capacity, limit, limit, self.battery_efficiency);
        // Pre-charge to the configured fraction through the law so
        // the level is consistent with the efficiency model.
        let target = capacity * self.initial_battery_fraction;
        while battery.level().as_joules() + 1e-6 < target.as_joules() {
            let draw = battery
                .max_charge_now()
                .min((target - battery.level()) / self.battery_efficiency);
            if draw.as_joules() <= 1e-6 {
                break;
            }
            battery
                .apply(draw, Energy::ZERO)
                .expect("pre-charge within limits");
        }
        NodeEnergyConfig {
            battery,
            energy_model: NodeEnergyModel::new(overhead * self.slot, Energy::ZERO, self.recv_power),
            max_power,
            grid_limit: self.grid_limit,
        }
    }

    /// The per-node energy hardware for this scenario.
    #[must_use]
    pub fn energy_config(&self, net: &Network) -> EnergyConfig {
        let nodes = net
            .topology()
            .nodes()
            .iter()
            .map(|node| self.node_energy_config(node.kind().is_base_station()))
            .collect();
        EnergyConfig {
            nodes,
            cost: QuadraticCost::new(self.cost.0, self.cost.1, self.cost.2),
        }
    }

    /// The narrowest bandwidth any band can present in a slot (the
    /// cellular band's fixed width or the smallest random-band lower
    /// bound).
    #[must_use]
    pub fn min_bandwidth(&self) -> Bandwidth {
        let random_min = self
            .random_bands
            .iter()
            .map(|&(lo, _)| lo)
            .fold(f64::INFINITY, f64::min);
        Bandwidth::from_megahertz(self.cellular_band_mhz.min(random_min))
    }

    /// The largest interference pruning floor that provably cannot change
    /// the physical model: `min(Γ,1)·η·W_min / p_max` over the scenario's
    /// narrowest band and largest transmit power cap (see
    /// `PhyConfig::prune_gain_floor`). Assign it to
    /// [`Scenario::gain_floor`] to enable exact-zero pruning.
    #[must_use]
    pub fn interference_gain_floor(&self) -> f64 {
        self.phy().prune_gain_floor(
            self.min_bandwidth(),
            self.bs_max_power.max(self.user_max_power),
        )
    }

    /// The interference cutoff radius implied by [`Scenario::gain_floor`]:
    /// beyond `d_cut = (C/F)^{1/γ}` meters the unshadowed gain falls below
    /// the floor and is pruned to exactly zero. `None` when pruning is
    /// disabled (`gain_floor <= 0`).
    #[must_use]
    pub fn cutoff_radius_m(&self) -> Option<f64> {
        if self.gain_floor > 0.0 {
            Some((self.path_loss_c / self.gain_floor).powf(1.0 / self.path_loss_gamma))
        } else {
            None
        }
    }

    /// The controller configuration for this scenario.
    #[must_use]
    pub fn controller_config(&self) -> ControllerConfig {
        ControllerConfig {
            v: self.v,
            lambda: self.lambda,
            k_max: self.k_max,
            packet_size: self.packet_size,
            slot: self.slot,
            scheduler: self.scheduler,
            relay: self.architecture.relay_policy(),
            energy_policy: self.energy_policy,
            w_max: self.max_bandwidth(),
            degradation: self.degradation,
            bs_sleep: self.bs_sleep,
            energy_coop: self.energy_coop,
        }
    }

    /// A conservative sleep policy scaled to this scenario's BS overhead:
    /// a BS sleeps after 3 consecutive slots below 2 packets of backlog,
    /// drops to 10 % of its overhead power while asleep, wakes (over a
    /// 2-slot ramp at full overhead) once backlog reaches 8 packets.
    #[must_use]
    pub fn default_sleep_policy(&self) -> greencell_core::SleepPolicy {
        greencell_core::SleepPolicy {
            threshold_pkts: 2.0,
            w_slots: 3,
            wake_threshold_pkts: 8.0,
            ramp_slots: 2,
            sleep_power: Power::from_watts(self.bs_overhead_power.as_watts() * 0.1),
            ramp_power: self.bs_overhead_power,
        }
    }

    /// A default inter-BS energy-cooperation policy: 70 % transfer
    /// efficiency, a typical figure for DC-bus sharing between sites.
    #[must_use]
    pub fn default_coop_policy(&self) -> greencell_core::CoopPolicy {
        greencell_core::CoopPolicy { eta_x: 0.7 }
    }

    /// Per-session packet demand per slot, `v_s(t)`.
    #[must_use]
    pub fn demand_packets_per_slot(&self) -> Packets {
        (self.session_demand * self.slot).whole_packets(self.packet_size)
    }
}

/// Folds a coordinate back into `[0, area]` by mirror reflection at the
/// boundary it crossed. Hotspot offsets are radially bounded by `2σ ≪
/// area`, so a single reflection always suffices; the trailing clamp only
/// guards degenerate configurations where it would not.
fn reflect_into(v: f64, area: f64) -> f64 {
    let folded = if v < 0.0 {
        -v
    } else if v > area {
        2.0 * area - v
    } else {
        v
    };
    folded.clamp(0.0, area)
}

/// Every random topology decision of a scenario, drawn but not yet
/// assembled into a dense [`Network`].
///
/// Node indices are dense: base stations first (in
/// [`Scenario::bs_positions`] order), then users. The layout costs `Θ(n)`
/// memory, so it is the representation city-scale paths decompose before
/// any `Θ(n²)` gain matrix is built.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioLayout {
    /// Node kinds in dense index order (BSs first).
    pub kinds: Vec<NodeKind>,
    /// Node positions in dense index order.
    pub positions: Vec<Point>,
    /// Per-node spectrum access in dense index order.
    pub bands: Vec<BandSet>,
    /// Sessions as `(destination node index, demand)`.
    pub sessions: Vec<(usize, DataRate)>,
    /// Symmetric per-link shadowing offsets in dB, `(i, j, db)` with
    /// `i < j`; empty when shadowing is disabled.
    pub shadowing_db: Vec<(usize, usize, f64)>,
}

impl ScenarioLayout {
    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` if the layout has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Number of base stations (the leading `bs_count` dense indices).
    #[must_use]
    pub fn bs_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_base_station()).count()
    }

    /// The index of the base station nearest to node `idx` (ties broken
    /// toward the lower index), or `None` if the layout has no BSs.
    /// The paper has no cell association — this is the "cell" used by
    /// diurnal traffic profiles and bench reporting only.
    #[must_use]
    pub fn nearest_bs(&self, idx: usize) -> Option<usize> {
        let p = self.positions[idx];
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_base_station())
            .min_by(|&(a, _), &(b, _)| {
                let da = self.positions[a].distance_to(p).as_meters();
                let db = self.positions[b].distance_to(p).as_meters();
                da.total_cmp(&db).then(a.cmp(&b))
            })
            .map(|(i, _)| i)
    }

    /// The diurnal "cell" (nearest-BS index) of every session destination,
    /// in session order. Empty sessions map to an empty vec; a BS-less
    /// layout maps every session to cell 0.
    #[must_use]
    pub fn session_cells(&self) -> Vec<usize> {
        self.sessions
            .iter()
            .map(|&(dest, _)| self.nearest_bs(dest).unwrap_or(0))
            .collect()
    }

    /// Assembles the dense [`Network`] this layout describes, applying
    /// `scenario`'s gain floor. [`Scenario::build_network`] is exactly
    /// `build_layout().assemble(&scenario)`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkError`] from validation.
    pub fn assemble(&self, scenario: &Scenario) -> Result<Network, NetworkError> {
        let mut b = NetworkBuilder::new(
            PathLossModel::new(scenario.path_loss_c, scenario.path_loss_gamma),
            scenario.band_count(),
        );
        for (kind, &pos) in self.kinds.iter().zip(&self.positions) {
            match kind {
                NodeKind::BaseStation => b.add_base_station(pos),
                NodeKind::User => b.add_user(pos),
            };
        }
        for (i, &bands) in self.bands.iter().enumerate() {
            b.set_bands(greencell_net::NodeId::from_index(i), bands);
        }
        for &(dest, demand) in &self.sessions {
            b.add_session(greencell_net::NodeId::from_index(dest), demand);
        }
        for &(i, j, db) in &self.shadowing_db {
            b.set_shadowing_db(
                greencell_net::NodeId::from_index(i),
                greencell_net::NodeId::from_index(j),
                db,
            );
        }
        if scenario.gain_floor > 0.0 {
            b.set_gain_floor(scenario.gain_floor);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_section_vi() {
        let s = Scenario::paper(1);
        assert_eq!(s.area_m, 2000.0);
        assert_eq!(s.bs_positions, vec![(500.0, 500.0), (1500.0, 500.0)]);
        assert_eq!(s.users, 20);
        assert_eq!(s.band_count(), 5);
        assert_eq!(s.session_demand.as_kilobits_per_second(), 100.0);
        assert_eq!(s.path_loss_c, 62.5);
        assert_eq!(s.path_loss_gamma, 4.0);
        assert_eq!(s.sinr_threshold, 1.0);
        assert_eq!(s.noise_density, 1e-20);
        assert_eq!(s.user_max_power.as_watts(), 1.0);
        assert_eq!(s.bs_max_power.as_watts(), 20.0);
        assert_eq!(s.user_renewable_max.as_watts(), 1.0);
        assert_eq!(s.bs_renewable_max.as_watts(), 15.0);
        assert_eq!(s.user_charge_limit.as_kilowatt_hours(), 0.06);
        assert_eq!(s.bs_charge_limit.as_kilowatt_hours(), 0.1);
        assert_eq!(s.grid_limit.as_kilowatt_hours(), 0.2);
        assert_eq!(s.cost, (0.8, 0.2, 0.0));
        assert_eq!(s.slot.as_minutes(), 1.0);
        assert_eq!(s.horizon, 100);
        // 100 kbps × 60 s / 10⁴ bits = 600 packets per slot.
        assert_eq!(s.demand_packets_per_slot().count(), 600);
    }

    #[test]
    fn network_build_is_deterministic() {
        let s = Scenario::paper(9);
        let a = s.build_network().unwrap();
        let b = s.build_network().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.topology().user_count(), 20);
        assert_eq!(a.topology().base_station_count(), 2);
        assert_eq!(a.session_count(), 5);
    }

    #[test]
    fn different_seeds_place_users_differently() {
        let a = Scenario::paper(1).build_network().unwrap();
        let b = Scenario::paper(2).build_network().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn users_stay_inside_the_area() {
        let s = Scenario::paper(3);
        let net = s.build_network().unwrap();
        for u in net.topology().users() {
            let p = net.topology().node(u).position();
            assert!((0.0..=2000.0).contains(&p.x()));
            assert!((0.0..=2000.0).contains(&p.y()));
        }
    }

    #[test]
    fn cellular_band_available_everywhere() {
        let s = Scenario::paper(4);
        let net = s.build_network().unwrap();
        for id in net.topology().ids() {
            assert!(net.bands_at(id).contains(BandId::from_index(0)));
        }
    }

    #[test]
    fn bs_hardware_differs_from_users() {
        let s = Scenario::paper(5);
        let net = s.build_network().unwrap();
        let cfg = s.energy_config(&net);
        let bs = net.topology().base_stations().next().unwrap();
        let user = net.topology().users().next().unwrap();
        assert_eq!(cfg.nodes[bs.index()].max_power.as_watts(), 20.0);
        assert_eq!(cfg.nodes[user.index()].max_power.as_watts(), 1.0);
        assert_eq!(
            cfg.nodes[bs.index()]
                .battery
                .charge_limit()
                .as_kilowatt_hours(),
            0.1
        );
    }

    #[test]
    fn controller_config_tracks_architecture() {
        let mut s = Scenario::paper(6);
        s.architecture = Architecture::OneHopRenewable;
        assert_eq!(
            s.controller_config().relay,
            greencell_core::RelayPolicy::OneHop
        );
    }

    #[test]
    fn tiny_is_small() {
        let s = Scenario::tiny(7);
        let net = s.build_network().unwrap();
        assert_eq!(net.topology().len(), 5);
        assert_eq!(net.session_count(), 2);
    }
}
