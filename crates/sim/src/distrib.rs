//! Multi-process work-stealing sweep driver.
//!
//! [`run_sweep_distributed`] scales the sweep engine past one process: a
//! driver writes the point list to an on-disk **manifest**, spawns worker
//! *processes* (the hidden `greencell sweep-worker` mode, or the
//! `sweep_worker` test binary), and merges their per-point result files
//! into a [`SweepReport`]. Because every point's randomness is sealed
//! inside its own scenario seed (SplitMix64-derived, placement
//! independent), the merged [`SweepReport::stability_json`] is
//! **byte-identical** to the in-process [`crate::sweep::run_sweep`] at any
//! process count — the distributed-equivalence CI gate pins this.
//!
//! # Claim protocol
//!
//! The work queue is the filesystem, shared by all workers under one
//! `work_dir`:
//!
//! ```text
//! work_dir/
//!   manifest.json      # checksummed point list (label + exact scenario)
//!   claims/p<i>.claim  # exclusive-create claim files, one per point
//!   results/p<i>.json  # checksummed per-point outcomes, atomic writes
//!   stats/<worker>.json# per-worker claim/steal/requeue counters
//! ```
//!
//! * **Claim**: `O_CREAT|O_EXCL` on `claims/p<i>.claim` — the kernel
//!   guarantees exactly one winner no matter how many processes race.
//! * **Complete**: the winner runs the point and writes
//!   `results/p<i>.json` via [`crate::fsio::write_text_atomic`]; a result
//!   file, once present, is never half-written.
//! * **Steal**: a claim whose mtime is older than `stale_after` with no
//!   result next to it belongs to a dead (or wedged) worker. Stealing is
//!   `rename(2)` of the claim onto a per-stealer tombstone — again exactly
//!   one winner — after which the thief recomputes the point. A stolen
//!   point recomputes to the same deterministic outcome, so even the
//!   "dead" worker racing back to life and finishing its write is
//!   harmless: both result images decode to the same deterministic fields.
//! * **Quarantine**: a result file that fails validation (torn write,
//!   checksum mismatch, or a stale entry from an edited sweep) is renamed
//!   to `<name>.corrupt` and the point is **requeued**. Quarantined files
//!   are never re-read as results — only exact `p<i>.json` names are.
//!
//! The driver cleans `claims/` and `stats/` when it starts (one driver
//! owns a work dir at a time), salvages any valid `results/` left by a
//! previous interrupted run, and — after every spawned worker has exited —
//! runs the same claim loop in-process to finish anything a crashed
//! worker fleet left behind. Completion is therefore guaranteed whenever
//! the points themselves are computable.

use crate::checkpoint::{entry_of, outcome_json, SavedEntry};
use crate::faults::{FadeEvent, FaultSpec, MarkovFault, OutageScope, PriceSpike, SlotWindow};
use crate::scenario::{DemandModel, DiurnalProfile, GridModel, Placement, TouPricing};
use crate::snapshot::{arr, f64_of, fingerprint_debug, fnv1a_64, get, hex_f64, hex_u64, u64_of};
use crate::sweep::{json_escape, run_point, SweepPoint, SweepReport};
use crate::{Architecture, Scenario, SimError};
use greencell_core::{DegradationPolicy, EnergyPolicy, SchedulerKind};
use greencell_trace::json::{parse, Value};
use greencell_units::{DataRate, Energy, PacketSize, Packets, Power, TimeDelta};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// The `format` tag of the work-queue manifest.
pub const MANIFEST_FORMAT: &str = "greencell-distrib-manifest";

/// The `format` tag of a per-point result file.
pub const RESULT_FORMAT: &str = "greencell-distrib-result";

/// The distributed-sweep on-disk format version (manifest + results).
pub const DISTRIB_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Options and stats.
// ---------------------------------------------------------------------------

/// How to launch one worker process: a program plus fixed leading
/// arguments (the driver appends `--dir/--id/--stale-after-ms/--poll-ms`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCommand {
    /// The worker executable.
    pub program: PathBuf,
    /// Arguments placed before the driver-appended flags (e.g.
    /// `["sweep-worker"]` when the program is the `greencell` CLI).
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// A worker command for an explicit program path.
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        Self {
            program: program.into(),
            args,
        }
    }

    /// The current executable re-invoked with `args` — how the `greencell`
    /// CLI reaches its own hidden `sweep-worker` mode.
    ///
    /// # Errors
    ///
    /// Propagates [`std::env::current_exe`] failures as [`SimError::Io`].
    pub fn current_exe(args: Vec<String>) -> Result<Self, SimError> {
        let program =
            std::env::current_exe().map_err(|e| SimError::Io(format!("current_exe: {e}")))?;
        Ok(Self { program, args })
    }
}

/// Distributed-driver knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistribOptions {
    /// Worker processes to spawn (≥ 1; zero is rejected, not clamped).
    pub workers: usize,
    /// How to launch each worker.
    pub worker: WorkerCommand,
    /// A claim older than this with no result is considered abandoned and
    /// may be stolen.
    pub stale_after: Duration,
    /// How long an idle worker sleeps before rescanning the queue.
    pub poll: Duration,
}

impl DistribOptions {
    /// Options with the default staleness (30 s) and poll (25 ms) knobs.
    #[must_use]
    pub fn new(workers: usize, worker: WorkerCommand) -> Self {
        Self {
            workers,
            worker,
            stale_after: Duration::from_secs(30),
            poll: Duration::from_millis(25),
        }
    }
}

/// What one worker process did (persisted to `stats/<worker>.json`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Points this worker claimed fresh.
    pub claimed: usize,
    /// Points this worker actually computed (claims + steals).
    pub computed: usize,
    /// Stale claims this worker stole from dead workers.
    pub steals: usize,
    /// Corrupt or stale result files this worker quarantined and requeued.
    pub requeued: usize,
}

impl WorkerStats {
    fn json(&self) -> String {
        format!(
            "{{\"claimed\":{},\"computed\":{},\"steals\":{},\"requeued\":{}}}\n",
            self.claimed, self.computed, self.steals, self.requeued
        )
    }

    fn parse_str(text: &str) -> Result<Self, String> {
        let v = parse(text.trim()).map_err(|e| format!("unparseable worker stats: {e}"))?;
        let count = |key: &str| -> Result<usize, String> {
            let x = get(&v, key)?
                .as_f64()
                .ok_or_else(|| format!("{key} is not a number"))?;
            Ok(x as usize)
        };
        Ok(Self {
            claimed: count("claimed")?,
            computed: count("computed")?,
            steals: count("steals")?,
            requeued: count("requeued")?,
        })
    }
}

/// What a distributed sweep recovered, computed, stole, and quarantined,
/// summed over the driver and every worker process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistribStats {
    /// Valid results salvaged from a previous interrupted run.
    pub salvaged: usize,
    /// Points computed this run (across all workers + driver salvage).
    pub computed: usize,
    /// Stale-claim steals across all workers.
    pub steals: usize,
    /// Corrupt/stale result files quarantined and recomputed.
    pub requeued: usize,
    /// Worker processes that exited unsuccessfully (killed or errored).
    pub worker_failures: usize,
}

// ---------------------------------------------------------------------------
// Exact Scenario codec.
// ---------------------------------------------------------------------------
//
// Every numeric field is encoded as its *internal* representation's bit
// pattern (hex), so decode(encode(s)) == s bitwise. The worker re-derives
// the Debug fingerprint of the decoded scenario and refuses to run if it
// differs from the manifest's — a codec drift can therefore never produce
// silently-wrong results.

fn pairs_json(pairs: &[(f64, f64)]) -> String {
    let rows: Vec<String> = pairs
        .iter()
        .map(|&(a, b)| format!("[{},{}]", hex_f64(a), hex_f64(b)))
        .collect();
    format!("[{}]", rows.join(","))
}

fn windows_json(windows: &[SlotWindow]) -> String {
    let rows: Vec<String> = windows
        .iter()
        .map(|w| format!("[{},{}]", hex_u64(w.start as u64), hex_u64(w.end as u64)))
        .collect();
    format!("[{}]", rows.join(","))
}

fn markov_json(m: Option<MarkovFault>) -> String {
    m.map_or_else(
        || "null".to_string(),
        |m| format!("[{},{}]", hex_f64(m.stay_up), hex_f64(m.stay_down)),
    )
}

fn faults_json(spec: &FaultSpec) -> String {
    let spikes: Vec<String> = spec
        .price_spikes
        .iter()
        .map(|s| {
            format!(
                "[{},{},{}]",
                hex_u64(s.window.start as u64),
                hex_u64(s.window.end as u64),
                hex_f64(s.multiplier)
            )
        })
        .collect();
    let fades: Vec<String> = spec
        .battery_fade
        .iter()
        .map(|e| {
            format!(
                "[{},{},{}]",
                hex_u64(e.slot as u64),
                hex_u64(e.node as u64),
                hex_f64(e.factor)
            )
        })
        .collect();
    let scope = match spec.outage_scope {
        OutageScope::BaseStations => "bs",
        OutageScope::Users => "users",
        OutageScope::All => "all",
    };
    format!(
        "{{\"node_outage\":{},\"outage_scope\":\"{scope}\",\"band_loss\":{},\"droughts\":{},\"price_spikes\":[{}],\"charge_block\":{},\"battery_fade\":[{}],\"dropout_probability\":{}}}",
        markov_json(spec.node_outage),
        markov_json(spec.band_loss),
        windows_json(&spec.droughts),
        spikes.join(","),
        windows_json(&spec.charge_block),
        fades.join(","),
        hex_f64(spec.dropout_probability),
    )
}

/// Encodes a [`Scenario`] exactly (bit-for-bit round trip).
#[must_use]
pub fn scenario_json(s: &Scenario) -> String {
    let scheduler = match s.scheduler {
        SchedulerKind::Greedy => "greedy",
        SchedulerKind::SequentialFix => "sequential_fix",
    };
    let architecture = match s.architecture {
        Architecture::Proposed => "proposed",
        Architecture::MultiHopNoRenewable => "mh_no_re",
        Architecture::OneHopRenewable => "oh_re",
        Architecture::OneHopNoRenewable => "oh_no_re",
    };
    let demand_model = match s.demand_model {
        DemandModel::Constant => "constant",
        DemandModel::Poisson => "poisson",
    };
    let grid_model = match s.grid_model {
        GridModel::Iid => "\"iid\"".to_string(),
        GridModel::Markov { stay_on, stay_off } => {
            format!("[{},{}]", hex_f64(stay_on), hex_f64(stay_off))
        }
    };
    let placement = match s.placement {
        Placement::Uniform => "\"uniform\"".to_string(),
        Placement::Hotspots { sigma_m, fraction } => {
            format!("[{},{}]", hex_f64(sigma_m), hex_f64(fraction))
        }
    };
    let pricing = match s.pricing {
        TouPricing::Flat => "\"flat\"".to_string(),
        TouPricing::Periodic {
            period_slots,
            peak_slots,
            peak_multiplier,
        } => format!(
            "[{},{},{}]",
            hex_u64(period_slots as u64),
            hex_u64(peak_slots as u64),
            hex_f64(peak_multiplier)
        ),
    };
    let energy_policy = match s.energy_policy {
        EnergyPolicy::MarginalPrice => "marginal_price",
        EnergyPolicy::GridOnly => "grid_only",
    };
    let degradation = match s.degradation {
        DegradationPolicy::Graceful => "graceful",
        DegradationPolicy::Strict => "strict",
    };
    let diurnal = s.diurnal.map_or_else(
        || "null".to_string(),
        |d| {
            format!(
                "[{},{}]",
                hex_u64(d.period_slots as u64),
                hex_f64(d.min_fraction)
            )
        },
    );
    let demands = s.session_demands_kbps.as_ref().map_or_else(
        || "null".to_string(),
        |rates| {
            let rows: Vec<String> = rates.iter().map(|&r| hex_f64(r)).collect();
            format!("[{}]", rows.join(","))
        },
    );
    let faults = s
        .faults
        .as_ref()
        .map_or_else(|| "null".to_string(), faults_json);
    let bs_sleep = s.bs_sleep.map_or_else(
        || "null".to_string(),
        |p| {
            format!(
                "[{},{},{},{},{},{}]",
                hex_f64(p.threshold_pkts),
                hex_u64(u64::from(p.w_slots)),
                hex_f64(p.wake_threshold_pkts),
                hex_u64(u64::from(p.ramp_slots)),
                hex_f64(p.sleep_power.as_watts()),
                hex_f64(p.ramp_power.as_watts()),
            )
        },
    );
    let energy_coop = s
        .energy_coop
        .map_or_else(|| "null".to_string(), |c| hex_f64(c.eta_x));
    format!(
        "{{\"area_m\":{},\"bs_positions\":{},\"users\":{},\"cellular_band_mhz\":{},\"random_bands\":{},\"user_band_probability\":{},\"sessions\":{},\"session_demand_bps\":{},\"session_demands_kbps\":{},\"path_loss_c\":{},\"path_loss_gamma\":{},\"sinr_threshold\":{},\"noise_density\":{},\"user_max_power_w\":{},\"bs_max_power_w\":{},\"user_renewable_max_w\":{},\"bs_renewable_max_w\":{},\"user_charge_limit_j\":{},\"bs_charge_limit_j\":{},\"user_battery_capacity_j\":{},\"bs_battery_capacity_j\":{},\"initial_battery_fraction\":{},\"battery_efficiency\":{},\"grid_limit_j\":{},\"user_grid_probability\":{},\"recv_power_w\":{},\"bs_overhead_power_w\":{},\"user_overhead_power_w\":{},\"cost\":[{},{},{}],\"v\":{},\"lambda\":{},\"k_max\":{},\"packet_size_bits\":{},\"slot_s\":{},\"horizon\":{},\"scheduler\":\"{scheduler}\",\"architecture\":\"{architecture}\",\"track_lower_bound\":{},\"demand_model\":\"{demand_model}\",\"grid_model\":{grid_model},\"shadowing_sigma_db\":{},\"placement\":{placement},\"gain_floor\":{},\"diurnal\":{diurnal},\"pricing\":{pricing},\"energy_policy\":\"{energy_policy}\",\"faults\":{faults},\"degradation\":\"{degradation}\",\"bs_sleep\":{bs_sleep},\"energy_coop\":{energy_coop},\"seed\":{}}}",
        hex_f64(s.area_m),
        pairs_json(&s.bs_positions),
        hex_u64(s.users as u64),
        hex_f64(s.cellular_band_mhz),
        pairs_json(&s.random_bands),
        hex_f64(s.user_band_probability),
        hex_u64(s.sessions as u64),
        hex_f64(s.session_demand.as_bits_per_second()),
        demands,
        hex_f64(s.path_loss_c),
        hex_f64(s.path_loss_gamma),
        hex_f64(s.sinr_threshold),
        hex_f64(s.noise_density),
        hex_f64(s.user_max_power.as_watts()),
        hex_f64(s.bs_max_power.as_watts()),
        hex_f64(s.user_renewable_max.as_watts()),
        hex_f64(s.bs_renewable_max.as_watts()),
        hex_f64(s.user_charge_limit.as_joules()),
        hex_f64(s.bs_charge_limit.as_joules()),
        hex_f64(s.user_battery_capacity.as_joules()),
        hex_f64(s.bs_battery_capacity.as_joules()),
        hex_f64(s.initial_battery_fraction),
        hex_f64(s.battery_efficiency),
        hex_f64(s.grid_limit.as_joules()),
        hex_f64(s.user_grid_probability),
        hex_f64(s.recv_power.as_watts()),
        hex_f64(s.bs_overhead_power.as_watts()),
        hex_f64(s.user_overhead_power.as_watts()),
        hex_f64(s.cost.0),
        hex_f64(s.cost.1),
        hex_f64(s.cost.2),
        hex_f64(s.v),
        hex_f64(s.lambda),
        hex_u64(s.k_max.count()),
        hex_u64(s.packet_size.as_bits()),
        hex_f64(s.slot.as_seconds()),
        hex_u64(s.horizon as u64),
        s.track_lower_bound,
        hex_f64(s.shadowing_sigma_db),
        hex_f64(s.gain_floor),
        hex_u64(s.seed),
    )
}

fn usize_of(v: &Value) -> Result<usize, String> {
    u64_of(v).map(|x| x as usize)
}

fn str_of<'a>(v: &'a Value, what: &str) -> Result<&'a str, String> {
    v.as_str().ok_or_else(|| format!("{what} must be a string"))
}

fn pairs_of(v: &Value) -> Result<Vec<(f64, f64)>, String> {
    arr(v)?
        .iter()
        .map(|row| {
            let a = arr(row)?;
            if a.len() != 2 {
                return Err(format!("pair has {} fields, need 2", a.len()));
            }
            Ok((f64_of(&a[0])?, f64_of(&a[1])?))
        })
        .collect()
}

fn windows_of(v: &Value) -> Result<Vec<SlotWindow>, String> {
    arr(v)?
        .iter()
        .map(|row| {
            let a = arr(row)?;
            if a.len() != 2 {
                return Err(format!("window has {} fields, need 2", a.len()));
            }
            Ok(SlotWindow {
                start: usize_of(&a[0])?,
                end: usize_of(&a[1])?,
            })
        })
        .collect()
}

fn markov_of(v: &Value) -> Result<Option<MarkovFault>, String> {
    match v {
        Value::Null => Ok(None),
        other => {
            let a = arr(other)?;
            if a.len() != 2 {
                return Err(format!("markov fault has {} fields, need 2", a.len()));
            }
            Ok(Some(MarkovFault {
                stay_up: f64_of(&a[0])?,
                stay_down: f64_of(&a[1])?,
            }))
        }
    }
}

fn faults_of(v: &Value) -> Result<FaultSpec, String> {
    let outage_scope = match str_of(get(v, "outage_scope")?, "outage_scope")? {
        "bs" => OutageScope::BaseStations,
        "users" => OutageScope::Users,
        "all" => OutageScope::All,
        other => return Err(format!("unknown outage scope `{other}`")),
    };
    let price_spikes = arr(get(v, "price_spikes")?)?
        .iter()
        .map(|row| {
            let a = arr(row)?;
            if a.len() != 3 {
                return Err(format!("price spike has {} fields, need 3", a.len()));
            }
            Ok(PriceSpike {
                window: SlotWindow {
                    start: usize_of(&a[0])?,
                    end: usize_of(&a[1])?,
                },
                multiplier: f64_of(&a[2])?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let battery_fade = arr(get(v, "battery_fade")?)?
        .iter()
        .map(|row| {
            let a = arr(row)?;
            if a.len() != 3 {
                return Err(format!("fade event has {} fields, need 3", a.len()));
            }
            Ok(FadeEvent {
                slot: usize_of(&a[0])?,
                node: usize_of(&a[1])?,
                factor: f64_of(&a[2])?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(FaultSpec {
        node_outage: markov_of(get(v, "node_outage")?)?,
        outage_scope,
        band_loss: markov_of(get(v, "band_loss")?)?,
        droughts: windows_of(get(v, "droughts")?)?,
        price_spikes,
        charge_block: windows_of(get(v, "charge_block")?)?,
        battery_fade,
        dropout_probability: f64_of(get(v, "dropout_probability")?)?,
    })
}

/// Decodes a [`scenario_json`] image. The caller is expected to verify
/// the decoded scenario's fingerprint against the one recorded next to
/// it — that is what makes this codec safe to evolve.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn scenario_of(v: &Value) -> Result<Scenario, String> {
    let scheduler = match str_of(get(v, "scheduler")?, "scheduler")? {
        "greedy" => SchedulerKind::Greedy,
        "sequential_fix" => SchedulerKind::SequentialFix,
        other => return Err(format!("unknown scheduler `{other}`")),
    };
    let architecture = match str_of(get(v, "architecture")?, "architecture")? {
        "proposed" => Architecture::Proposed,
        "mh_no_re" => Architecture::MultiHopNoRenewable,
        "oh_re" => Architecture::OneHopRenewable,
        "oh_no_re" => Architecture::OneHopNoRenewable,
        other => return Err(format!("unknown architecture `{other}`")),
    };
    let demand_model = match str_of(get(v, "demand_model")?, "demand_model")? {
        "constant" => DemandModel::Constant,
        "poisson" => DemandModel::Poisson,
        other => return Err(format!("unknown demand model `{other}`")),
    };
    let grid_model = match get(v, "grid_model")? {
        Value::String(s) if s == "iid" => GridModel::Iid,
        Value::String(s) => return Err(format!("unknown grid model `{s}`")),
        other => {
            let a = arr(other)?;
            if a.len() != 2 {
                return Err(format!("markov grid model has {} fields, need 2", a.len()));
            }
            GridModel::Markov {
                stay_on: f64_of(&a[0])?,
                stay_off: f64_of(&a[1])?,
            }
        }
    };
    let placement = match get(v, "placement")? {
        Value::String(s) if s == "uniform" => Placement::Uniform,
        Value::String(s) => return Err(format!("unknown placement `{s}`")),
        other => {
            let a = arr(other)?;
            if a.len() != 2 {
                return Err(format!("hotspot placement has {} fields, need 2", a.len()));
            }
            Placement::Hotspots {
                sigma_m: f64_of(&a[0])?,
                fraction: f64_of(&a[1])?,
            }
        }
    };
    let pricing = match get(v, "pricing")? {
        Value::String(s) if s == "flat" => TouPricing::Flat,
        Value::String(s) => return Err(format!("unknown pricing `{s}`")),
        other => {
            let a = arr(other)?;
            if a.len() != 3 {
                return Err(format!("periodic pricing has {} fields, need 3", a.len()));
            }
            TouPricing::Periodic {
                period_slots: usize_of(&a[0])?,
                peak_slots: usize_of(&a[1])?,
                peak_multiplier: f64_of(&a[2])?,
            }
        }
    };
    let energy_policy = match str_of(get(v, "energy_policy")?, "energy_policy")? {
        "marginal_price" => EnergyPolicy::MarginalPrice,
        "grid_only" => EnergyPolicy::GridOnly,
        other => return Err(format!("unknown energy policy `{other}`")),
    };
    let degradation = match str_of(get(v, "degradation")?, "degradation")? {
        "graceful" => DegradationPolicy::Graceful,
        "strict" => DegradationPolicy::Strict,
        other => return Err(format!("unknown degradation policy `{other}`")),
    };
    let diurnal = match get(v, "diurnal")? {
        Value::Null => None,
        other => {
            let a = arr(other)?;
            if a.len() != 2 {
                return Err(format!("diurnal profile has {} fields, need 2", a.len()));
            }
            Some(DiurnalProfile {
                period_slots: usize_of(&a[0])?,
                min_fraction: f64_of(&a[1])?,
            })
        }
    };
    let session_demands_kbps = match get(v, "session_demands_kbps")? {
        Value::Null => None,
        other => Some(
            arr(other)?
                .iter()
                .map(f64_of)
                .collect::<Result<Vec<_>, String>>()?,
        ),
    };
    let faults = match get(v, "faults")? {
        Value::Null => None,
        other => Some(faults_of(other)?),
    };
    let bs_sleep = match get(v, "bs_sleep")? {
        Value::Null => None,
        other => {
            let a = arr(other)?;
            if a.len() != 6 {
                return Err(format!("bs_sleep policy has {} fields, need 6", a.len()));
            }
            let slots = |x: &Value| -> Result<u32, String> {
                u32::try_from(u64_of(x)?).map_err(|e| format!("slot count overflows u32: {e}"))
            };
            Some(greencell_core::SleepPolicy {
                threshold_pkts: f64_of(&a[0])?,
                w_slots: slots(&a[1])?,
                wake_threshold_pkts: f64_of(&a[2])?,
                ramp_slots: slots(&a[3])?,
                sleep_power: Power::from_watts(f64_of(&a[4])?),
                ramp_power: Power::from_watts(f64_of(&a[5])?),
            })
        }
    };
    let energy_coop = match get(v, "energy_coop")? {
        Value::Null => None,
        other => Some(greencell_core::CoopPolicy {
            eta_x: f64_of(other)?,
        }),
    };
    let cost = {
        let a = arr(get(v, "cost")?)?;
        if a.len() != 3 {
            return Err(format!("cost has {} fields, need 3", a.len()));
        }
        (f64_of(&a[0])?, f64_of(&a[1])?, f64_of(&a[2])?)
    };
    let track_lower_bound = match get(v, "track_lower_bound")? {
        Value::Bool(b) => *b,
        _ => return Err("track_lower_bound must be a bool".to_string()),
    };
    Ok(Scenario {
        area_m: f64_of(get(v, "area_m")?)?,
        bs_positions: pairs_of(get(v, "bs_positions")?)?,
        users: usize_of(get(v, "users")?)?,
        cellular_band_mhz: f64_of(get(v, "cellular_band_mhz")?)?,
        random_bands: pairs_of(get(v, "random_bands")?)?,
        user_band_probability: f64_of(get(v, "user_band_probability")?)?,
        sessions: usize_of(get(v, "sessions")?)?,
        session_demand: DataRate::from_bits_per_second(f64_of(get(v, "session_demand_bps")?)?),
        session_demands_kbps,
        path_loss_c: f64_of(get(v, "path_loss_c")?)?,
        path_loss_gamma: f64_of(get(v, "path_loss_gamma")?)?,
        sinr_threshold: f64_of(get(v, "sinr_threshold")?)?,
        noise_density: f64_of(get(v, "noise_density")?)?,
        user_max_power: Power::from_watts(f64_of(get(v, "user_max_power_w")?)?),
        bs_max_power: Power::from_watts(f64_of(get(v, "bs_max_power_w")?)?),
        user_renewable_max: Power::from_watts(f64_of(get(v, "user_renewable_max_w")?)?),
        bs_renewable_max: Power::from_watts(f64_of(get(v, "bs_renewable_max_w")?)?),
        user_charge_limit: Energy::from_joules(f64_of(get(v, "user_charge_limit_j")?)?),
        bs_charge_limit: Energy::from_joules(f64_of(get(v, "bs_charge_limit_j")?)?),
        user_battery_capacity: Energy::from_joules(f64_of(get(v, "user_battery_capacity_j")?)?),
        bs_battery_capacity: Energy::from_joules(f64_of(get(v, "bs_battery_capacity_j")?)?),
        initial_battery_fraction: f64_of(get(v, "initial_battery_fraction")?)?,
        battery_efficiency: f64_of(get(v, "battery_efficiency")?)?,
        grid_limit: Energy::from_joules(f64_of(get(v, "grid_limit_j")?)?),
        user_grid_probability: f64_of(get(v, "user_grid_probability")?)?,
        recv_power: Power::from_watts(f64_of(get(v, "recv_power_w")?)?),
        bs_overhead_power: Power::from_watts(f64_of(get(v, "bs_overhead_power_w")?)?),
        user_overhead_power: Power::from_watts(f64_of(get(v, "user_overhead_power_w")?)?),
        cost,
        v: f64_of(get(v, "v")?)?,
        lambda: f64_of(get(v, "lambda")?)?,
        k_max: Packets::new(u64_of(get(v, "k_max")?)?),
        packet_size: PacketSize::from_bits(u64_of(get(v, "packet_size_bits")?)?),
        slot: TimeDelta::from_seconds(f64_of(get(v, "slot_s")?)?),
        horizon: usize_of(get(v, "horizon")?)?,
        scheduler,
        architecture,
        track_lower_bound,
        demand_model,
        grid_model,
        shadowing_sigma_db: f64_of(get(v, "shadowing_sigma_db")?)?,
        placement,
        gain_floor: f64_of(get(v, "gain_floor")?)?,
        diurnal,
        pricing,
        energy_policy,
        faults,
        degradation,
        bs_sleep,
        energy_coop,
        seed: u64_of(get(v, "seed")?)?,
    })
}

// ---------------------------------------------------------------------------
// Checksummed two-line containers (snapshot-style) for manifest/results.
// ---------------------------------------------------------------------------

fn container_wrap(format: &str, payload: &str) -> String {
    let checksum = fnv1a_64(payload.as_bytes());
    format!(
        "{{\"format\":\"{format}\",\"version\":{DISTRIB_VERSION},\"checksum\":\"0x{checksum:016x}\"}}\n{payload}\n"
    )
}

fn container_unwrap(format: &str, text: &str, path: &Path) -> Result<Value, SimError> {
    let path_str = path.display().to_string();
    let corrupt = |detail: String| SimError::CorruptSnapshot {
        path: path_str.clone(),
        detail,
    };
    let (header_line, rest) = text
        .split_once('\n')
        .ok_or_else(|| corrupt("missing payload line".to_string()))?;
    let payload = rest.strip_suffix('\n').unwrap_or(rest);
    if payload.contains('\n') {
        return Err(corrupt("more than two lines".to_string()));
    }
    let header = parse(header_line).map_err(|e| corrupt(format!("unparseable header: {e}")))?;
    match header.get("format").and_then(Value::as_str) {
        Some(tag) if tag == format => {}
        Some(other) => return Err(corrupt(format!("format is `{other}`, expected `{format}`"))),
        None => return Err(corrupt("header has no format tag".to_string())),
    }
    let version = header
        .get("version")
        .and_then(Value::as_f64)
        .ok_or_else(|| corrupt("header has no version".to_string()))?;
    if version != f64::from(DISTRIB_VERSION) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let found = if version.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(&version) {
            version as u32
        } else {
            return Err(corrupt(format!("version `{version}` is not a u32")));
        };
        return Err(SimError::SnapshotVersionMismatch {
            path: path_str,
            expected: DISTRIB_VERSION,
            found,
        });
    }
    let declared = header
        .get("checksum")
        .ok_or_else(|| corrupt("header has no checksum".to_string()))
        .and_then(|v| u64_of(v).map_err(|e| corrupt(format!("bad checksum field: {e}"))))?;
    let actual = fnv1a_64(payload.as_bytes());
    if declared != actual {
        return Err(corrupt(format!(
            "checksum mismatch: header declares 0x{declared:016x}, payload hashes to 0x{actual:016x}"
        )));
    }
    parse(payload).map_err(|e| corrupt(format!("unparseable payload: {e}")))
}

// ---------------------------------------------------------------------------
// Work-dir layout.
// ---------------------------------------------------------------------------

fn manifest_path(work_dir: &Path) -> PathBuf {
    work_dir.join("manifest.json")
}

fn claims_dir(work_dir: &Path) -> PathBuf {
    work_dir.join("claims")
}

fn results_dir(work_dir: &Path) -> PathBuf {
    work_dir.join("results")
}

fn stats_dir(work_dir: &Path) -> PathBuf {
    work_dir.join("stats")
}

fn claim_path(work_dir: &Path, idx: usize) -> PathBuf {
    claims_dir(work_dir).join(format!("p{idx}.claim"))
}

fn result_path(work_dir: &Path, idx: usize) -> PathBuf {
    results_dir(work_dir).join(format!("p{idx}.json"))
}

fn io_err(path: &Path, e: &dyn std::fmt::Display) -> SimError {
    SimError::Io(format!("{}: {e}", path.display()))
}

/// One decoded manifest entry.
struct ManifestPoint {
    label: String,
    scenario: Scenario,
    scenario_fp: u64,
}

fn manifest_string(points: &[SweepPoint], fingerprints: &[u64]) -> String {
    let rows: Vec<String> = points
        .iter()
        .zip(fingerprints)
        .map(|(p, &fp)| {
            format!(
                "{{\"label\":\"{}\",\"scenario_fp\":{},\"scenario\":{}}}",
                json_escape(&p.label),
                hex_u64(fp),
                scenario_json(&p.scenario)
            )
        })
        .collect();
    container_wrap(
        MANIFEST_FORMAT,
        &format!("{{\"points\":[{}]}}", rows.join(",")),
    )
}

/// Reads and fully validates the manifest, including the per-point
/// fingerprint check on every *decoded* scenario — a worker whose codec
/// disagrees with the driver's refuses to compute anything.
fn read_manifest(work_dir: &Path) -> Result<Vec<ManifestPoint>, SimError> {
    let path = manifest_path(work_dir);
    let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
    let value = container_unwrap(MANIFEST_FORMAT, &text, &path)?;
    let corrupt = |detail: String| SimError::CorruptSnapshot {
        path: path.display().to_string(),
        detail,
    };
    let rows = arr(get(&value, "points").map_err(&corrupt)?).map_err(&corrupt)?;
    let mut points = Vec::with_capacity(rows.len());
    for (idx, row) in rows.iter().enumerate() {
        let label = get(row, "label")
            .and_then(|v| str_of(v, "label").map(str::to_string))
            .map_err(&corrupt)?;
        let scenario_fp = get(row, "scenario_fp").and_then(u64_of).map_err(&corrupt)?;
        let scenario = get(row, "scenario")
            .and_then(scenario_of)
            .map_err(&corrupt)?;
        let decoded_fp = fingerprint_debug(&scenario);
        if decoded_fp != scenario_fp {
            return Err(corrupt(format!(
                "point {idx} (`{label}`): decoded scenario fingerprint 0x{decoded_fp:016x} \
                 does not match manifest 0x{scenario_fp:016x} — scenario codec drift"
            )));
        }
        points.push(ManifestPoint {
            label,
            scenario,
            scenario_fp,
        });
    }
    Ok(points)
}

/// Parses `results/p<idx>.json` and validates it against the manifest
/// point. `Err` means the file exists but cannot be trusted.
fn read_result(
    work_dir: &Path,
    idx: usize,
    expect: &ManifestPoint,
) -> Result<SavedEntry, SimError> {
    let path = result_path(work_dir, idx);
    let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
    let value = container_unwrap(RESULT_FORMAT, &text, &path)?;
    let corrupt = |detail: String| SimError::CorruptSnapshot {
        path: path.display().to_string(),
        detail,
    };
    let entry = entry_of(&value).map_err(&corrupt)?;
    if entry.outcome.label != expect.label
        || entry.outcome.seed != expect.scenario.seed
        || entry.scenario_fp != expect.scenario_fp
    {
        return Err(corrupt(format!(
            "result belongs to a different sweep: label `{}` seed {} fp 0x{:016x}, \
             expected `{}` seed {} fp 0x{:016x}",
            entry.outcome.label,
            entry.outcome.seed,
            entry.scenario_fp,
            expect.label,
            expect.scenario.seed,
            expect.scenario_fp,
        )));
    }
    Ok(entry)
}

/// Whether a missing-file error (point not yet computed) vs a real error.
fn is_not_found(e: &SimError) -> bool {
    matches!(e, SimError::Io(msg) if msg.contains("No such file")
        || msg.contains("kind: NotFound")
        || msg.contains("(os error 2)"))
}

/// Renames a bad result file to `<name>.corrupt` (never re-read as a
/// result) and clears any claim so the point can be re-claimed.
fn quarantine_result(work_dir: &Path, idx: usize, worker_id: &str, nonce: usize) {
    let path = result_path(work_dir, idx);
    let mut name = path
        .file_name()
        .map_or_else(|| "result".into(), std::ffi::OsStr::to_os_string);
    name.push(".corrupt");
    // Best-effort: a concurrent quarantine of the same file is fine —
    // exactly one rename wins, the loser sees NotFound.
    let _ = std::fs::rename(&path, path.with_file_name(name));
    // The claim (if any) belonged to whoever wrote the bad result; retire
    // it through the same single-winner rename the steal path uses.
    let claim = claim_path(work_dir, idx);
    let tomb = claim.with_file_name(format!("p{idx}.claim.requeue.{worker_id}.{nonce}"));
    let _ = std::fs::rename(&claim, tomb);
}

// ---------------------------------------------------------------------------
// Claim primitives.
// ---------------------------------------------------------------------------

/// Attempts to claim point `idx` via exclusive create. Exactly one racing
/// process wins; everyone else sees `AlreadyExists`.
fn try_claim(work_dir: &Path, idx: usize, worker_id: &str) -> Result<bool, SimError> {
    use std::io::Write;
    let path = claim_path(work_dir, idx);
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)
    {
        Ok(mut f) => {
            // Owner identity is advisory (debugging); ownership itself was
            // decided by create_new.
            let _ = writeln!(f, "{worker_id}");
            Ok(true)
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) => Err(io_err(&path, &e)),
    }
}

/// Whether the claim for `idx` is stale: it exists, has no result, and its
/// mtime is older than `stale_after`. A vanished claim reports `false`
/// (someone else is mid-steal; rescan later).
fn claim_is_stale(work_dir: &Path, idx: usize, stale_after: Duration) -> bool {
    let Ok(meta) = std::fs::metadata(claim_path(work_dir, idx)) else {
        return false;
    };
    let Ok(modified) = meta.modified() else {
        return false;
    };
    modified
        .elapsed()
        .map(|age| age >= stale_after)
        .unwrap_or(false)
}

/// Attempts to steal the (stale) claim on `idx`: renames it onto a
/// per-stealer tombstone — `rename(2)` guarantees exactly one winner per
/// claim *instance* — then re-marks the claim with the thief's identity.
///
/// The captured tombstone's mtime is re-checked *after* the rename:
/// between this thief's staleness check and its rename, a faster thief
/// may have already stolen the stale instance and recreated a fresh
/// claim, in which case the rename captured a *live* claim, not a stale
/// one. That capture is undone (the claim is restored via hard link —
/// exclusive, so a concurrent fresh claimant keeps its own claim and the
/// duplicate ownership stays harmless) and reported as no steal. Only one
/// file ever carries the stale mtime, so exactly one thief wins.
fn try_steal(
    work_dir: &Path,
    idx: usize,
    worker_id: &str,
    nonce: usize,
    stale_after: Duration,
) -> bool {
    let claim = claim_path(work_dir, idx);
    let tomb = claim.with_file_name(format!("p{idx}.claim.stale.{worker_id}.{nonce}"));
    if std::fs::rename(&claim, &tomb).is_err() {
        return false; // someone else stole it first (or it vanished)
    }
    let captured_stale = std::fs::metadata(&tomb)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|m| m.elapsed().ok())
        .is_some_and(|age| age >= stale_after);
    if !captured_stale {
        let _ = std::fs::hard_link(&tomb, &claim);
        let _ = std::fs::remove_file(&tomb);
        return false;
    }
    // Fresh claim marks the new owner and restarts the staleness clock.
    let _ = crate::fsio::write_text_atomic(&claim, &format!("{worker_id} (stolen)\n"));
    true
}

// ---------------------------------------------------------------------------
// Worker loop.
// ---------------------------------------------------------------------------

/// Runs one worker against `work_dir` until every manifest point has a
/// result: claim fresh points, steal stale ones, quarantine bad results,
/// compute, and atomically persist. Safe to run in any number of
/// concurrent processes; the hidden `greencell sweep-worker` mode and the
/// `sweep_worker` binary are thin wrappers over this.
///
/// # Errors
///
/// Returns the first simulation failure, a manifest validation error, or
/// an I/O error on the work-dir itself. On success the worker's stats have
/// also been persisted to `stats/<worker_id>.json`.
pub fn run_worker(
    work_dir: &Path,
    worker_id: &str,
    stale_after: Duration,
    poll: Duration,
) -> Result<WorkerStats, SimError> {
    let points = read_manifest(work_dir)?;
    let mut stats = WorkerStats::default();
    let mut verified = vec![false; points.len()];
    let mut nonce = 0usize;

    loop {
        let mut progress = false;
        for (idx, point) in points.iter().enumerate() {
            if verified[idx] {
                continue;
            }
            // Result already there? Validate once; quarantine if bad.
            match read_result(work_dir, idx, point) {
                Ok(_) => {
                    verified[idx] = true;
                    continue;
                }
                Err(e) if is_not_found(&e) => {}
                Err(_) => {
                    nonce += 1;
                    quarantine_result(work_dir, idx, worker_id, nonce);
                    stats.requeued += 1;
                    progress = true;
                }
            }
            // Claim it, or steal it if its owner died.
            let owned = if try_claim(work_dir, idx, worker_id)? {
                stats.claimed += 1;
                true
            } else if claim_is_stale(work_dir, idx, stale_after) {
                nonce += 1;
                let stolen = try_steal(work_dir, idx, worker_id, nonce, stale_after);
                if stolen {
                    stats.steals += 1;
                }
                stolen
            } else {
                false
            };
            if !owned {
                continue;
            }
            let outcome = run_point(&point.label, &point.scenario)?;
            let payload = outcome_json(point.scenario_fp, &outcome);
            let path = result_path(work_dir, idx);
            crate::fsio::write_text_atomic(&path, &container_wrap(RESULT_FORMAT, &payload))
                .map_err(|e| io_err(&path, &e))?;
            stats.computed += 1;
            verified[idx] = true;
            progress = true;
        }
        if verified.iter().all(|&v| v) {
            break;
        }
        if !progress {
            // Someone else holds the remaining claims; wait for results
            // to land or claims to go stale.
            std::thread::sleep(poll);
        }
    }

    let path = stats_dir(work_dir).join(format!("{worker_id}.json"));
    crate::fsio::write_text_atomic(&path, &stats.json()).map_err(|e| io_err(&path, &e))?;
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

fn validate(points: &[SweepPoint], opts: &DistribOptions) -> Result<(), SimError> {
    if opts.workers == 0 {
        return Err(SimError::InvalidConfig {
            detail: "distributed sweep needs at least one worker process (workers == 0)"
                .to_string(),
        });
    }
    if points.is_empty() {
        return Err(SimError::InvalidConfig {
            detail: "distributed sweep needs at least one point (empty point set)".to_string(),
        });
    }
    Ok(())
}

fn create_layout(work_dir: &Path) -> Result<(), SimError> {
    for dir in [
        work_dir.to_path_buf(),
        claims_dir(work_dir),
        results_dir(work_dir),
        stats_dir(work_dir),
    ] {
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
    }
    Ok(())
}

/// Removes every file in `dir` (claims, tombstones, stats from a previous
/// run). Results are deliberately *not* cleared — they are the resume
/// state.
fn clear_dir(dir: &Path) -> Result<(), SimError> {
    for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, &e))? {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        std::fs::remove_file(entry.path()).map_err(|e| io_err(&entry.path(), &e))?;
    }
    Ok(())
}

/// Sets up `work_dir` as a work queue for `points`: creates the layout,
/// clears claims and stats from any previous run (results are kept — they
/// are the resume state), and atomically writes the manifest. The driver
/// calls this itself; it is public so tests and external orchestrators
/// can stage a queue and spawn [`run_worker`] processes directly.
///
/// # Errors
///
/// Returns [`SimError::Io`] on work-dir I/O failures.
pub fn prepare_work_dir(points: &[SweepPoint], work_dir: &Path) -> Result<(), SimError> {
    create_layout(work_dir)?;
    clear_dir(&claims_dir(work_dir))?;
    clear_dir(&stats_dir(work_dir))?;
    let fingerprints: Vec<u64> = points
        .iter()
        .map(|p| fingerprint_debug(&p.scenario))
        .collect();
    let manifest = manifest_string(points, &fingerprints);
    let path = manifest_path(work_dir);
    crate::fsio::write_text_atomic(&path, &manifest).map_err(|e| io_err(&path, &e))
}

/// Like [`run_sweep_distributed`], but also reports salvage/steal/requeue
/// counters aggregated across the driver and every worker process.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for zero workers or an empty point
/// set, the first point failure (deterministically re-encountered by the
/// driver's salvage pass if a worker died on it), or an I/O error on the
/// work dir.
pub fn run_sweep_distributed_stats(
    points: &[SweepPoint],
    opts: &DistribOptions,
    work_dir: &Path,
) -> Result<(SweepReport, DistribStats), SimError> {
    validate(points, opts)?;
    let start = Instant::now();
    let mut stats = DistribStats::default();
    prepare_work_dir(points, work_dir)?;

    // Salvage census: validate pre-existing results now so the stats are
    // honest; bad files are quarantined before any worker sees them.
    let manifest_points = read_manifest(work_dir)?;
    for (idx, point) in manifest_points.iter().enumerate() {
        match read_result(work_dir, idx, point) {
            Ok(_) => stats.salvaged += 1,
            Err(e) if is_not_found(&e) => {}
            Err(_) => {
                quarantine_result(work_dir, idx, "driver", idx);
                stats.requeued += 1;
            }
        }
    }

    // Spawn the worker fleet.
    let mut children = Vec::with_capacity(opts.workers);
    for w in 0..opts.workers {
        let child = Command::new(&opts.worker.program)
            .args(&opts.worker.args)
            .arg("--dir")
            .arg(work_dir)
            .arg("--id")
            .arg(format!("w{w}"))
            .arg("--stale-after-ms")
            .arg(opts.stale_after.as_millis().to_string())
            .arg("--poll-ms")
            .arg(opts.poll.as_millis().to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| io_err(&opts.worker.program, &e))?;
        children.push(child);
    }
    for mut child in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(_) => stats.worker_failures += 1,
            Err(_) => stats.worker_failures += 1,
        }
    }

    // Salvage pass: with every worker gone, any leftover claim is dead by
    // definition — steal immediately (stale_after = 0) and finish the
    // sweep in-process. Also re-surfaces a failing point's error
    // deterministically instead of reporting a silent short merge.
    let salvage = run_worker(work_dir, "driver", Duration::ZERO, opts.poll)?;
    stats.computed += salvage.computed;
    stats.steals += salvage.steals;
    stats.requeued += salvage.requeued;

    // Aggregate worker stats (the driver's own salvage pass wrote
    // `stats/driver.json` too; it is already counted above, so skip it).
    for w in 0..opts.workers {
        let path = stats_dir(work_dir).join(format!("w{w}.json"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // killed before writing stats; its work was stolen
        };
        let ws = WorkerStats::parse_str(&text).map_err(|e| SimError::CorruptSnapshot {
            path: path.display().to_string(),
            detail: e,
        })?;
        stats.computed += ws.computed;
        stats.steals += ws.steals;
        stats.requeued += ws.requeued;
    }

    // Merge in submission order — strict now: everything must be present
    // and valid after the salvage pass.
    let mut outcomes = Vec::with_capacity(points.len());
    for (idx, point) in manifest_points.iter().enumerate() {
        outcomes.push(read_result(work_dir, idx, point)?.outcome);
    }
    Ok((
        SweepReport {
            outcomes,
            threads: opts.workers,
            total_wall: start.elapsed(),
        },
        stats,
    ))
}

/// [`crate::sweep::run_sweep`] across worker *processes*: points are
/// claimed from an on-disk queue with single-winner semantics, stale
/// claims of dead workers are stolen, and the merged report's
/// [`SweepReport::stability_json`] is byte-identical to the in-process
/// engine at any process count.
///
/// # Errors
///
/// See [`run_sweep_distributed_stats`].
pub fn run_sweep_distributed(
    points: &[SweepPoint],
    opts: &DistribOptions,
    work_dir: &Path,
) -> Result<SweepReport, SimError> {
    run_sweep_distributed_stats(points, opts, work_dir).map(|(report, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    /// A scenario with every extension knob lit, so the codec round-trip
    /// covers each enum arm and optional field.
    fn kitchen_sink() -> Scenario {
        let mut s = Scenario::paper(99);
        s.session_demands_kbps = Some(vec![50.0, 150.0]);
        s.scheduler = SchedulerKind::SequentialFix;
        s.architecture = Architecture::OneHopRenewable;
        s.track_lower_bound = true;
        s.demand_model = DemandModel::Poisson;
        s.grid_model = GridModel::Markov {
            stay_on: 0.95,
            stay_off: 0.9,
        };
        s.shadowing_sigma_db = 6.0;
        s.placement = Placement::Hotspots {
            sigma_m: 120.0,
            fraction: 0.8,
        };
        s.gain_floor = 1e-15;
        s.diurnal = Some(DiurnalProfile {
            period_slots: 48,
            min_fraction: 0.3,
        });
        s.pricing = TouPricing::Periodic {
            period_slots: 12,
            peak_slots: 6,
            peak_multiplier: 5.0,
        };
        s.energy_policy = EnergyPolicy::GridOnly;
        s.degradation = DegradationPolicy::Strict;
        s.faults = Some(FaultSpec {
            node_outage: Some(MarkovFault {
                stay_up: 0.9,
                stay_down: 0.6,
            }),
            outage_scope: OutageScope::All,
            band_loss: Some(MarkovFault {
                stay_up: 0.8,
                stay_down: 0.5,
            }),
            droughts: vec![SlotWindow { start: 3, end: 9 }],
            price_spikes: vec![PriceSpike {
                window: SlotWindow { start: 5, end: 7 },
                multiplier: 4.0,
            }],
            charge_block: vec![SlotWindow { start: 1, end: 2 }],
            battery_fade: vec![FadeEvent {
                slot: 4,
                node: 1,
                factor: 0.7,
            }],
            dropout_probability: 0.05,
        });
        s
    }

    #[test]
    fn scenario_codec_round_trips_exactly() {
        for scenario in [Scenario::paper(7), Scenario::tiny(13), kitchen_sink()] {
            let encoded = scenario_json(&scenario);
            let value = parse(&encoded).expect("codec output parses");
            let decoded = scenario_of(&value).expect("codec output decodes");
            assert_eq!(decoded, scenario);
            assert_eq!(
                fingerprint_debug(&decoded),
                fingerprint_debug(&scenario),
                "fingerprint must survive the round trip"
            );
        }
    }

    #[test]
    fn city_scenario_round_trips_exactly() {
        let scenario = Scenario::city(60, 3, Scenario::default_city_area(3), 4242);
        let value = parse(&scenario_json(&scenario)).expect("parses");
        assert_eq!(scenario_of(&value).expect("decodes"), scenario);
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let points = vec![SweepPoint::new("p0", Scenario::tiny(1))];
        let opts = DistribOptions::new(0, WorkerCommand::new("/bin/false", vec![]));
        let err = run_sweep_distributed(&points, &opts, Path::new("/tmp/unused"))
            .expect_err("workers == 0 must be rejected");
        assert!(
            matches!(err, SimError::InvalidConfig { ref detail } if detail.contains("workers")),
            "got {err:?}"
        );
    }

    #[test]
    fn empty_point_set_is_a_typed_error() {
        let opts = DistribOptions::new(2, WorkerCommand::new("/bin/false", vec![]));
        let err = run_sweep_distributed(&[], &opts, Path::new("/tmp/unused"))
            .expect_err("empty point sets must be rejected");
        assert!(
            matches!(err, SimError::InvalidConfig { ref detail } if detail.contains("empty")),
            "got {err:?}"
        );
    }

    #[test]
    fn claim_is_single_winner_across_threads() {
        let dir = std::env::temp_dir().join(format!("greencell-claim-{}", std::process::id()));
        std::fs::create_dir_all(claims_dir(&dir)).expect("layout");
        let dir = &dir;
        let wins: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|w| scope.spawn(move || try_claim(dir, 0, &format!("t{w}")).expect("io")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| usize::from(h.join().expect("join")))
                .sum()
        });
        assert_eq!(wins, 1, "exactly one claimant may win");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn steal_is_single_winner_across_threads() {
        let dir = std::env::temp_dir().join(format!("greencell-steal-{}", std::process::id()));
        std::fs::create_dir_all(claims_dir(&dir)).expect("layout");
        assert!(try_claim(&dir, 0, "dead-worker").expect("io"));
        // Backdate the claim so it is genuinely stale: only the stale
        // instance may be stolen — a thief that captures the fresh claim
        // a faster thief recreated must undo and report no steal.
        let old = std::time::SystemTime::now() - Duration::from_secs(3600);
        let file = std::fs::File::options()
            .write(true)
            .open(claim_path(&dir, 0))
            .expect("open claim");
        file.set_times(std::fs::FileTimes::new().set_modified(old))
            .expect("backdate claim");
        drop(file);
        let dir = &dir;
        let wins: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|w| {
                    scope.spawn(move || {
                        try_steal(dir, 0, &format!("t{w}"), w, Duration::from_secs(60))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| usize::from(h.join().expect("join")))
                .sum()
        });
        assert_eq!(wins, 1, "exactly one thief may win");
        assert!(
            claim_path(dir, 0).exists(),
            "the stolen claim must be re-marked by the winner"
        );
        std::fs::remove_dir_all(dir).expect("cleanup");
    }
}
