//! Per-run measurement collection — everything Fig. 2 plots.

use greencell_stochastic::Series;

/// Everything recorded over one simulation run.
///
/// Units follow the paper's axes: costs in the cost function's currency,
/// BS energy buffers in kWh (Fig. 2(d)), user energy buffers in Wh
/// (Fig. 2(e)), backlogs in packets (Fig. 2(b)/(c)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    // Fields are crate-visible so the snapshot codec (`crate::snapshot`)
    // can serialize and rebuild a run's metrics without widening the
    // public API; everything else goes through the accessors below.
    pub(crate) cost: Series,
    pub(crate) grid_kwh: Series,
    pub(crate) backlog_bs: Series,
    pub(crate) backlog_users: Series,
    pub(crate) buffer_bs_kwh: Series,
    pub(crate) buffer_users_wh: Series,
    pub(crate) admitted: Series,
    pub(crate) routed: Series,
    pub(crate) scheduled_links: Series,
    pub(crate) relaxed_cost: Series,
    pub(crate) lyapunov: Series,
    pub(crate) delivered_total: u64,
    pub(crate) delivered_per_session: Vec<u64>,
    pub(crate) shed_total: u64,
    pub(crate) degraded_slots: u64,
    pub(crate) degradation_events: u64,
    pub(crate) lower_bound: Option<f64>,
}

impl RunMetrics {
    /// Creates an empty collection.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_slot(
        &mut self,
        cost: f64,
        grid_kwh: f64,
        backlog_bs: f64,
        backlog_users: f64,
        buffer_bs_kwh: f64,
        buffer_users_wh: f64,
        admitted: f64,
        routed: f64,
        scheduled_links: f64,
        shed: u64,
    ) {
        self.cost.push(cost);
        self.grid_kwh.push(grid_kwh);
        self.backlog_bs.push(backlog_bs);
        self.backlog_users.push(backlog_users);
        self.buffer_bs_kwh.push(buffer_bs_kwh);
        self.buffer_users_wh.push(buffer_users_wh);
        self.admitted.push(admitted);
        self.routed.push(routed);
        self.scheduled_links.push(scheduled_links);
        self.shed_total += shed;
    }

    pub(crate) fn record_degradation(&mut self, degraded: bool, events: u64) {
        self.degraded_slots += u64::from(degraded);
        self.degradation_events += events;
    }

    pub(crate) fn record_relaxed(&mut self, cost: f64) {
        self.relaxed_cost.push(cost);
    }

    pub(crate) fn record_lyapunov(&mut self, value: f64) {
        self.lyapunov.push(value);
    }

    pub(crate) fn set_delivered(&mut self, per_session: Vec<u64>) {
        self.delivered_total = per_session.iter().sum();
        self.delivered_per_session = per_session;
    }

    pub(crate) fn set_lower_bound(&mut self, bound: f64) {
        self.lower_bound = Some(bound);
    }

    /// Per-slot energy cost `f(P(t))` — Fig. 2(a)'s upper-bound input.
    #[must_use]
    pub fn cost_series(&self) -> &Series {
        &self.cost
    }

    /// Time-averaged energy cost `ψ` (the upper bound of Theorem 4).
    #[must_use]
    pub fn average_cost(&self) -> f64 {
        self.cost.mean()
    }

    /// Per-slot total grid draw in kWh.
    #[must_use]
    pub fn grid_series(&self) -> &Series {
        &self.grid_kwh
    }

    /// Total BS data-queue backlog over time (Fig. 2(b)).
    #[must_use]
    pub fn backlog_bs_series(&self) -> &Series {
        &self.backlog_bs
    }

    /// Total user data-queue backlog over time (Fig. 2(c)).
    #[must_use]
    pub fn backlog_users_series(&self) -> &Series {
        &self.backlog_users
    }

    /// Total BS energy-buffer level in kWh over time (Fig. 2(d)).
    #[must_use]
    pub fn buffer_bs_series(&self) -> &Series {
        &self.buffer_bs_kwh
    }

    /// Total user energy-buffer level in Wh over time (Fig. 2(e)).
    #[must_use]
    pub fn buffer_users_series(&self) -> &Series {
        &self.buffer_users_wh
    }

    /// Admitted packets per slot.
    #[must_use]
    pub fn admitted_series(&self) -> &Series {
        &self.admitted
    }

    /// Routed packets per slot.
    #[must_use]
    pub fn routed_series(&self) -> &Series {
        &self.routed
    }

    /// Scheduled transmissions per slot.
    #[must_use]
    pub fn scheduled_series(&self) -> &Series {
        &self.scheduled_links
    }

    /// The relaxed controller's per-slot costs, when tracked.
    #[must_use]
    pub fn relaxed_cost_series(&self) -> &Series {
        &self.relaxed_cost
    }

    /// The Lyapunov function `L(Θ(t+1))` per slot — the scalar congestion
    /// measure whose bounded drift is Theorem 3's mechanism.
    #[must_use]
    pub fn lyapunov_series(&self) -> &Series {
        &self.lyapunov
    }

    /// Mean one-slot Lyapunov drift over the run; `0.0` with fewer than
    /// two slots. Strong stability shows up as this flattening toward 0
    /// once the admission valve engages.
    #[must_use]
    pub fn mean_drift(&self) -> f64 {
        let v = self.lyapunov.values();
        if v.len() < 2 {
            return 0.0;
        }
        v.windows(2).map(|w| w[1] - w[0]).sum::<f64>() / (v.len() - 1) as f64
    }

    /// Theorem 5's lower bound `ψ̄ − B/V`, when tracked.
    #[must_use]
    pub fn lower_bound(&self) -> Option<f64> {
        self.lower_bound
    }

    /// Total packets delivered to destinations.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered_total
    }

    /// Packets delivered per session, in session-id order.
    #[must_use]
    pub fn delivered_per_session(&self) -> &[u64] {
        &self.delivered_per_session
    }

    /// Jain's fairness index of per-session deliveries: 1.0 when every
    /// session received the same throughput.
    #[must_use]
    pub fn delivery_fairness(&self) -> f64 {
        let shares: Vec<f64> = self
            .delivered_per_session
            .iter()
            .map(|&d| d as f64)
            .collect();
        greencell_stochastic::jain_fairness(&shares)
    }

    /// Total transmissions shed due to energy deficits (should be 0).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_total
    }

    /// Slots where a fault was active or the controller degraded service.
    #[must_use]
    pub fn degraded_slots(&self) -> u64 {
        self.degraded_slots
    }

    /// Total [`greencell_core::DegradationEvent`]s the controller emitted.
    #[must_use]
    pub fn degradation_events(&self) -> u64 {
        self.degradation_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut m = RunMetrics::new();
        m.record_slot(1.0, 0.1, 10.0, 5.0, 2.0, 30.0, 100.0, 90.0, 3.0, 0);
        m.record_slot(3.0, 0.3, 20.0, 15.0, 2.5, 35.0, 100.0, 80.0, 4.0, 1);
        assert_eq!(m.average_cost(), 2.0);
        assert_eq!(m.cost_series().len(), 2);
        assert_eq!(m.backlog_bs_series().last(), Some(20.0));
        assert_eq!(m.shed(), 1);
        assert_eq!(m.lower_bound(), None);
        m.set_lower_bound(-4.0);
        assert_eq!(m.lower_bound(), Some(-4.0));
    }

    #[test]
    fn per_session_delivery_and_fairness() {
        let mut m = RunMetrics::new();
        m.set_delivered(vec![300, 300, 300]);
        assert_eq!(m.delivered(), 900);
        assert_eq!(m.delivered_per_session(), &[300, 300, 300]);
        assert_eq!(m.delivery_fairness(), 1.0);
        m.set_delivered(vec![900, 0, 0]);
        assert!((m.delivery_fairness() - 1.0 / 3.0).abs() < 1e-12);
    }
}
