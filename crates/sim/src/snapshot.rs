//! Crash-safe snapshot/restore of a running simulation.
//!
//! A [`SimSnapshot`] captures every piece of state that evolves across
//! slots — queue backlogs, battery levels, all four random-stream
//! positions, the per-node grid connectivity chains, the fault-plan
//! cursor, the stability watchdog's window, and the metrics collected so
//! far — such that [`Simulator::restore`] followed by running the
//! remaining horizon is **bit-identical** to never having stopped.
//!
//! What is deliberately *not* captured:
//!
//! * Construction facts (network, `β`, `γ_max`, `B`, the fault plan, the
//!   resolved pipeline stages): a restore rebuilds them from the same
//!   scenario, and fingerprints verify the rebuild landed on the same
//!   values (most importantly, the regenerated [`crate::FaultPlan`] must
//!   match the one the snapshotted run was following).
//! * The controller's warm-kernel state (S1 power-control workspace, S4
//!   incremental solver): the kernels are proven bit-identical to their
//!   frozen oracles *regardless of warm state* by the standing
//!   equivalence gates, so a restore restarts them cold without
//!   perturbing a single decision.
//! * Wall-clock ([`greencell_core::StageTimings`]): timings restart from
//!   zero by design — they are observability, not state.
//!
//! # File format
//!
//! Exactly two lines of JSON (parse with the workspace's strict
//! dependency-free parser):
//!
//! ```text
//! {"format":"greencell-snapshot","version":1,"checksum":"0x<fnv1a64>"}
//! {...payload...}
//! ```
//!
//! The checksum is FNV-1a 64 over the payload line's exact bytes, so a
//! torn write fails closed. The payload encodes every `u64` (RNG words,
//! counters) and every exact `f64` (queue levels, series samples — as
//! `f64::to_bits`) as `"0x%016x"` hex strings, because the JSON parser
//! reads plain numbers as `f64` and would silently round anything above
//! 2⁵³. Files are written atomically (temp sibling + rename, see
//! [`crate::fsio`]); validation failures surface as typed
//! [`SimError::CorruptSnapshot`] / [`SimError::SnapshotVersionMismatch`]
//! — never a panic — so callers can quarantine the file and fall back.

use crate::faults::WatchdogState;
use crate::{GridModel, RunMetrics, Scenario, SimError, Simulator};
use greencell_core::{ControllerState, RelaxedState};
use greencell_energy::Battery;
use greencell_queue::PacketQueue;
use greencell_stochastic::{MarkovOnOff, Rng, Series};
use greencell_trace::json::{parse, Value};
use greencell_units::{Energy, Packets};
use std::fmt::Debug;
use std::fmt::Write as _;
use std::path::Path;

/// The `format` tag every snapshot header carries.
pub const SNAPSHOT_FORMAT: &str = "greencell-snapshot";

/// The format version this build writes and reads. Version 2 added the
/// controller's dynamic network state (BS sleep timers, user↔BS
/// association, transfer totals); version-1 files are rejected with a
/// typed [`SimError::SnapshotVersionMismatch`], never silently zeroed.
pub const SNAPSHOT_VERSION: u32 = 2;

/// FNV-1a 64-bit over `bytes` — the workspace's dependency-free content
/// checksum (snapshots, checkpoints, state fingerprints).
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of a value via its `Debug` form. Rust's `f64` Debug
/// formatting is shortest-roundtrip, so equal fingerprints mean equal
/// values for the plain-old-data types this is used on (scenarios, fault
/// plans).
pub(crate) fn fingerprint_debug<T: Debug>(value: &T) -> u64 {
    fnv1a_64(format!("{value:?}").as_bytes())
}

// ---------------------------------------------------------------------------
// Exact-value JSON encoding: u64 and f64 as "0x%016x" hex strings.
// ---------------------------------------------------------------------------

pub(crate) fn hex_u64(x: u64) -> String {
    format!("\"0x{x:016x}\"")
}

pub(crate) fn hex_f64(x: f64) -> String {
    hex_u64(x.to_bits())
}

pub(crate) fn hex_u64_list<I: IntoIterator<Item = u64>>(xs: I) -> String {
    let body: Vec<String> = xs.into_iter().map(hex_u64).collect();
    format!("[{}]", body.join(","))
}

pub(crate) fn hex_f64_list(xs: &[f64]) -> String {
    hex_u64_list(xs.iter().map(|x| x.to_bits()))
}

pub(crate) fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

pub(crate) fn arr(v: &Value) -> Result<&[Value], String> {
    v.as_array().ok_or_else(|| "expected an array".to_string())
}

pub(crate) fn u64_of(v: &Value) -> Result<u64, String> {
    let s = v
        .as_str()
        .ok_or_else(|| "expected a \"0x…\" hex string".to_string())?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("expected a 0x prefix, got `{s}`"))?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("bad hex `{s}`: {e}"))
}

pub(crate) fn f64_of(v: &Value) -> Result<f64, String> {
    Ok(f64::from_bits(u64_of(v)?))
}

pub(crate) fn usize_of(v: &Value) -> Result<usize, String> {
    usize::try_from(u64_of(v)?).map_err(|e| format!("count overflows usize: {e}"))
}

pub(crate) fn bool_of(v: &Value) -> Result<bool, String> {
    v.as_bool().ok_or_else(|| "expected a bool".to_string())
}

pub(crate) fn u64_list_of(v: &Value) -> Result<Vec<u64>, String> {
    arr(v)?.iter().map(u64_of).collect()
}

pub(crate) fn f64_list_of(v: &Value) -> Result<Vec<f64>, String> {
    arr(v)?.iter().map(f64_of).collect()
}

pub(crate) fn series_of(v: &Value) -> Result<Series, String> {
    Ok(f64_list_of(v)?.into_iter().collect())
}

fn rng_state_of(v: &Value) -> Result<[u64; 4], String> {
    let words = u64_list_of(v)?;
    <[u64; 4]>::try_from(words).map_err(|w| format!("RNG state has {} words, need 4", w.len()))
}

// ---------------------------------------------------------------------------
// Component codecs.
// ---------------------------------------------------------------------------

fn battery_json(b: &Battery) -> String {
    format!(
        "[{},{},{},{},{},{}]",
        hex_f64(b.capacity().as_joules()),
        hex_f64(b.charge_limit().as_joules()),
        hex_f64(b.discharge_limit().as_joules()),
        hex_f64(b.charge_efficiency()),
        hex_f64(b.level().as_joules()),
        b.charge_blocked(),
    )
}

fn battery_of(v: &Value) -> Result<Battery, String> {
    let a = arr(v)?;
    if a.len() != 6 {
        return Err(format!("battery has {} fields, need 6", a.len()));
    }
    let level = f64_of(&a[4])?;
    let capacity = f64_of(&a[0])?;
    if !(level.is_finite() && capacity.is_finite()) {
        return Err("battery level/capacity must be finite".to_string());
    }
    Ok(Battery::from_parts(
        Energy::from_joules(capacity),
        Energy::from_joules(f64_of(&a[1])?),
        Energy::from_joules(f64_of(&a[2])?),
        f64_of(&a[3])?,
        Energy::from_joules(level),
        bool_of(&a[5])?,
    ))
}

fn queue_json(q: &PacketQueue) -> String {
    format!(
        "[{},{},{},{}]",
        hex_u64(q.backlog().count()),
        hex_u64(q.total_arrivals()),
        hex_u64(q.total_offered()),
        hex_u64(q.total_wasted()),
    )
}

fn queue_of(v: &Value) -> Result<PacketQueue, String> {
    let a = arr(v)?;
    if a.len() != 4 {
        return Err(format!("queue has {} fields, need 4", a.len()));
    }
    let (offered, wasted) = (u64_of(&a[2])?, u64_of(&a[3])?);
    if wasted > offered {
        return Err(format!("queue wasted {wasted} exceeds offered {offered}"));
    }
    Ok(PacketQueue::from_parts(
        Packets::new(u64_of(&a[0])?),
        u64_of(&a[1])?,
        offered,
        wasted,
    ))
}

fn queues_json(qs: &[PacketQueue]) -> String {
    let body: Vec<String> = qs.iter().map(queue_json).collect();
    format!("[{}]", body.join(","))
}

fn queues_of(v: &Value) -> Result<Vec<PacketQueue>, String> {
    arr(v)?.iter().map(queue_of).collect()
}

fn bool_list_json(xs: &[bool]) -> String {
    let body: Vec<String> = xs.iter().map(bool::to_string).collect();
    format!("[{}]", body.join(","))
}

fn bool_list_of(v: &Value) -> Result<Vec<bool>, String> {
    arr(v)?.iter().map(bool_of).collect()
}

fn u32_list_of(v: &Value) -> Result<Vec<u32>, String> {
    u64_list_of(v)?
        .into_iter()
        .map(|x| u32::try_from(x).map_err(|e| format!("counter overflows u32: {e}")))
        .collect()
}

/// Associations use `u64::MAX` as the on-disk "no BS in range" sentinel
/// (the in-memory form is `usize::MAX`).
fn assoc_list_of(v: &Value) -> Result<Vec<usize>, String> {
    u64_list_of(v)?
        .into_iter()
        .map(|x| {
            if x == u64::MAX {
                Ok(usize::MAX)
            } else {
                usize::try_from(x).map_err(|e| format!("association overflows usize: {e}"))
            }
        })
        .collect()
}

fn controller_json(c: &ControllerState) -> String {
    let batteries: Vec<String> = c.batteries.iter().map(battery_json).collect();
    format!(
        "{{\"slot\":{},\"batteries\":[{}],\"data_queues\":{},\"delivered\":{},\"phantom\":{},\"link_queues\":{},\"awake\":{},\"idle\":{},\"ramp\":{},\"assoc\":{},\"sleep_tr\":{},\"wake_tr\":{},\"transferred\":{}}}",
        hex_u64(c.slot),
        batteries.join(","),
        queues_json(&c.data_queues),
        hex_u64_list(c.delivered.iter().map(|p| p.count())),
        hex_u64_list(c.phantom.iter().map(|p| p.count())),
        queues_json(&c.link_queues),
        bool_list_json(&c.awake),
        hex_u64_list(c.idle_slots.iter().map(|&x| u64::from(x))),
        hex_u64_list(c.ramp_remaining.iter().map(|&x| u64::from(x))),
        hex_u64_list(c.association.iter().map(|&a| {
            if a == usize::MAX {
                u64::MAX
            } else {
                a as u64
            }
        })),
        hex_u64(c.sleep_transitions),
        hex_u64(c.wake_transitions),
        hex_f64(c.transferred_kwh),
    )
}

fn controller_of(v: &Value) -> Result<ControllerState, String> {
    let batteries: Result<Vec<Battery>, String> =
        arr(get(v, "batteries")?)?.iter().map(battery_of).collect();
    let packets = |key: &str| -> Result<Vec<Packets>, String> {
        Ok(u64_list_of(get(v, key)?)?
            .into_iter()
            .map(Packets::new)
            .collect())
    };
    Ok(ControllerState {
        slot: u64_of(get(v, "slot")?)?,
        batteries: batteries?,
        data_queues: queues_of(get(v, "data_queues")?)?,
        delivered: packets("delivered")?,
        phantom: packets("phantom")?,
        link_queues: queues_of(get(v, "link_queues")?)?,
        awake: bool_list_of(get(v, "awake")?)?,
        idle_slots: u32_list_of(get(v, "idle")?)?,
        ramp_remaining: u32_list_of(get(v, "ramp")?)?,
        association: assoc_list_of(get(v, "assoc")?)?,
        sleep_transitions: u64_of(get(v, "sleep_tr")?)?,
        wake_transitions: u64_of(get(v, "wake_tr")?)?,
        transferred_kwh: f64_of(get(v, "transferred")?)?,
    })
}

fn relaxed_json(r: &RelaxedState) -> String {
    format!(
        "{{\"slot\":{},\"levels\":{},\"q\":{},\"g\":{},\"cost_sum\":{},\"cost_count\":{},\"admitted_sum\":{},\"admitted_count\":{}}}",
        hex_u64(r.slot),
        hex_f64_list(&r.levels),
        hex_f64_list(&r.q),
        hex_f64_list(&r.g),
        hex_f64(r.cost_sum),
        hex_u64(r.cost_count),
        hex_f64(r.admitted_sum),
        hex_u64(r.admitted_count),
    )
}

fn relaxed_of(v: &Value) -> Result<RelaxedState, String> {
    Ok(RelaxedState {
        slot: u64_of(get(v, "slot")?)?,
        levels: f64_list_of(get(v, "levels")?)?,
        q: f64_list_of(get(v, "q")?)?,
        g: f64_list_of(get(v, "g")?)?,
        cost_sum: f64_of(get(v, "cost_sum")?)?,
        cost_count: u64_of(get(v, "cost_count")?)?,
        admitted_sum: f64_of(get(v, "admitted_sum")?)?,
        admitted_count: u64_of(get(v, "admitted_count")?)?,
    })
}

fn watchdog_json(w: &WatchdogState) -> String {
    format!(
        "{{\"tail\":{},\"slots\":{},\"peak\":{},\"floor\":{},\"divergent\":{}}}",
        hex_f64_list(&w.tail),
        hex_u64(w.slots as u64),
        hex_f64(w.peak_backlog),
        hex_f64(w.battery_floor_kwh),
        hex_u64(w.divergent_slots as u64),
    )
}

fn watchdog_of(v: &Value) -> Result<WatchdogState, String> {
    Ok(WatchdogState {
        tail: f64_list_of(get(v, "tail")?)?,
        slots: usize_of(get(v, "slots")?)?,
        peak_backlog: f64_of(get(v, "peak")?)?,
        battery_floor_kwh: f64_of(get(v, "floor")?)?,
        divergent_slots: usize_of(get(v, "divergent")?)?,
    })
}

pub(crate) fn metrics_json(m: &RunMetrics) -> String {
    let series = [
        ("cost", &m.cost),
        ("grid_kwh", &m.grid_kwh),
        ("backlog_bs", &m.backlog_bs),
        ("backlog_users", &m.backlog_users),
        ("buffer_bs_kwh", &m.buffer_bs_kwh),
        ("buffer_users_wh", &m.buffer_users_wh),
        ("admitted", &m.admitted),
        ("routed", &m.routed),
        ("scheduled_links", &m.scheduled_links),
        ("relaxed_cost", &m.relaxed_cost),
        ("lyapunov", &m.lyapunov),
    ];
    let mut out = String::from("{");
    for (name, s) in series {
        let _ = write!(out, "\"{name}\":{},", hex_f64_list(s.values()));
    }
    let _ = write!(
        out,
        "\"delivered_total\":{},\"delivered_per_session\":{},\"shed\":{},\"degraded_slots\":{},\"degradation_events\":{},\"lower_bound\":{}}}",
        hex_u64(m.delivered_total),
        hex_u64_list(m.delivered_per_session.iter().copied()),
        hex_u64(m.shed_total),
        hex_u64(m.degraded_slots),
        hex_u64(m.degradation_events),
        m.lower_bound.map_or_else(|| "null".to_string(), hex_f64),
    );
    out
}

pub(crate) fn metrics_of(v: &Value) -> Result<RunMetrics, String> {
    let series = |key: &str| series_of(get(v, key)?);
    let count = |key: &str| u64_of(get(v, key)?);
    let lower_bound = match get(v, "lower_bound")? {
        Value::Null => None,
        other => Some(f64_of(other)?),
    };
    Ok(RunMetrics {
        cost: series("cost")?,
        grid_kwh: series("grid_kwh")?,
        backlog_bs: series("backlog_bs")?,
        backlog_users: series("backlog_users")?,
        buffer_bs_kwh: series("buffer_bs_kwh")?,
        buffer_users_wh: series("buffer_users_wh")?,
        admitted: series("admitted")?,
        routed: series("routed")?,
        scheduled_links: series("scheduled_links")?,
        relaxed_cost: series("relaxed_cost")?,
        lyapunov: series("lyapunov")?,
        delivered_total: count("delivered_total")?,
        delivered_per_session: u64_list_of(get(v, "delivered_per_session")?)?,
        shed_total: count("shed")?,
        degraded_slots: count("degraded_slots")?,
        degradation_events: count("degradation_events")?,
        lower_bound,
    })
}

// ---------------------------------------------------------------------------
// The snapshot itself.
// ---------------------------------------------------------------------------

/// The full evolving state of a [`Simulator`] at a slot boundary —
/// everything [`Simulator::restore`] needs to continue the run
/// bit-identically. Build one with [`Simulator::snapshot`]; persist and
/// recover with [`SimSnapshot::write`] / [`SimSnapshot::read`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// Where this snapshot was decoded from (`"<memory>"` if built
    /// in-process) — error context, not serialized.
    pub(crate) origin: String,
    /// Fingerprint of the scenario the run was built from.
    pub(crate) scenario_fp: u64,
    /// Fingerprint of the expanded fault plan (None for fault-free runs):
    /// proves a restore's regenerated plan follows the same schedule.
    pub(crate) fault_plan_fp: Option<u64>,
    /// The fault-plan cursor / next slot index to run.
    pub(crate) slots_run: usize,
    /// xoshiro256** positions of the four observation streams.
    pub(crate) band_rng: [u64; 4],
    pub(crate) renewable_rng: [u64; 4],
    pub(crate) grid_rng: [u64; 4],
    pub(crate) demand_rng: [u64; 4],
    /// Per-node Markov connectivity chains: (current state, RNG position).
    pub(crate) grid_chains: Vec<(bool, [u64; 4])>,
    /// The controller's queues, batteries, and slot counter.
    pub(crate) controller: ControllerState,
    /// The relaxed lower-bound controller's state, when tracked.
    pub(crate) relaxed: Option<RelaxedState>,
    /// The stability watchdog's bounded window and running aggregates.
    pub(crate) watchdog: WatchdogState,
    /// Everything recorded so far.
    pub(crate) metrics: RunMetrics,
}

impl SimSnapshot {
    /// The slot index the restored run will continue from.
    #[must_use]
    pub fn slots_run(&self) -> usize {
        self.slots_run
    }

    /// The payload line (line 2 of the file format).
    fn payload_json(&self) -> String {
        let chains: Vec<String> = self
            .grid_chains
            .iter()
            .map(|(state, s)| {
                format!(
                    "[{state},{}]",
                    s.iter().map(|&w| hex_u64(w)).collect::<Vec<_>>().join(",")
                )
            })
            .collect();
        format!(
            "{{\"scenario_fp\":{},\"fault_plan_fp\":{},\"slots_run\":{},\"rngs\":{{\"band\":{},\"renewable\":{},\"grid\":{},\"demand\":{}}},\"grid_chains\":[{}],\"controller\":{},\"relaxed\":{},\"watchdog\":{},\"metrics\":{}}}",
            hex_u64(self.scenario_fp),
            self.fault_plan_fp
                .map_or_else(|| "null".to_string(), hex_u64),
            hex_u64(self.slots_run as u64),
            hex_u64_list(self.band_rng),
            hex_u64_list(self.renewable_rng),
            hex_u64_list(self.grid_rng),
            hex_u64_list(self.demand_rng),
            chains.join(","),
            controller_json(&self.controller),
            self.relaxed
                .as_ref()
                .map_or_else(|| "null".to_string(), relaxed_json),
            watchdog_json(&self.watchdog),
            metrics_json(&self.metrics),
        )
    }

    fn from_payload(v: &Value) -> Result<Self, String> {
        let fault_plan_fp = match get(v, "fault_plan_fp")? {
            Value::Null => None,
            other => Some(u64_of(other)?),
        };
        let rngs = get(v, "rngs")?;
        let chains: Result<Vec<(bool, [u64; 4])>, String> = arr(get(v, "grid_chains")?)?
            .iter()
            .map(|entry| {
                let a = arr(entry)?;
                if a.len() != 5 {
                    return Err(format!("grid chain has {} fields, need 5", a.len()));
                }
                let mut words = [0_u64; 4];
                for (w, src) in words.iter_mut().zip(&a[1..]) {
                    *w = u64_of(src)?;
                }
                Ok((bool_of(&a[0])?, words))
            })
            .collect();
        let relaxed = match get(v, "relaxed")? {
            Value::Null => None,
            other => Some(relaxed_of(other)?),
        };
        Ok(Self {
            origin: "<memory>".to_string(),
            scenario_fp: u64_of(get(v, "scenario_fp")?)?,
            fault_plan_fp,
            slots_run: usize_of(get(v, "slots_run")?)?,
            band_rng: rng_state_of(get(rngs, "band")?)?,
            renewable_rng: rng_state_of(get(rngs, "renewable")?)?,
            grid_rng: rng_state_of(get(rngs, "grid")?)?,
            demand_rng: rng_state_of(get(rngs, "demand")?)?,
            grid_chains: chains?,
            controller: controller_of(get(v, "controller")?)?,
            relaxed,
            watchdog: watchdog_of(get(v, "watchdog")?)?,
            metrics: metrics_of(get(v, "metrics")?)?,
        })
    }

    /// The complete two-line file image (header + checksummed payload).
    #[must_use]
    pub fn to_file_string(&self) -> String {
        let payload = self.payload_json();
        let checksum = fnv1a_64(payload.as_bytes());
        format!(
            "{{\"format\":\"{SNAPSHOT_FORMAT}\",\"version\":{SNAPSHOT_VERSION},\"checksum\":\"0x{checksum:016x}\"}}\n{payload}\n"
        )
    }

    /// Parses a snapshot file image, verifying format, version, and
    /// checksum. `path` is used only for error context.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotVersionMismatch`] when the header declares a
    /// version this build does not read; [`SimError::CorruptSnapshot`] for
    /// every other validation failure (torn file, bad checksum, malformed
    /// payload).
    pub fn parse_str(text: &str, path: &str) -> Result<Self, SimError> {
        let corrupt = |detail: String| SimError::CorruptSnapshot {
            path: path.to_string(),
            detail,
        };
        let (header_line, rest) = text
            .split_once('\n')
            .ok_or_else(|| corrupt("missing payload line".to_string()))?;
        let payload = rest.strip_suffix('\n').unwrap_or(rest);
        if payload.contains('\n') {
            return Err(corrupt("more than two lines".to_string()));
        }
        let header = parse(header_line).map_err(|e| corrupt(format!("unparseable header: {e}")))?;
        let format = header
            .get("format")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt("header has no format tag".to_string()))?;
        if format != SNAPSHOT_FORMAT {
            return Err(corrupt(format!(
                "format is `{format}`, expected `{SNAPSHOT_FORMAT}`"
            )));
        }
        let version = header
            .get("version")
            .and_then(Value::as_f64)
            .ok_or_else(|| corrupt("header has no version".to_string()))?;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let version = if version.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(&version) {
            version as u32
        } else {
            return Err(corrupt(format!("version `{version}` is not a u32")));
        };
        if version != SNAPSHOT_VERSION {
            return Err(SimError::SnapshotVersionMismatch {
                path: path.to_string(),
                expected: SNAPSHOT_VERSION,
                found: version,
            });
        }
        let declared = header
            .get("checksum")
            .ok_or_else(|| corrupt("header has no checksum".to_string()))
            .and_then(|v| u64_of(v).map_err(|e| corrupt(format!("bad checksum field: {e}"))))?;
        let actual = fnv1a_64(payload.as_bytes());
        if declared != actual {
            return Err(corrupt(format!(
                "checksum mismatch: header declares 0x{declared:016x}, payload hashes to 0x{actual:016x}"
            )));
        }
        let value = parse(payload).map_err(|e| corrupt(format!("unparseable payload: {e}")))?;
        let mut snap = Self::from_payload(&value).map_err(corrupt)?;
        snap.origin = path.to_string();
        Ok(snap)
    }

    /// Writes the snapshot atomically (temp sibling + rename): a crash
    /// mid-write leaves the previous file intact.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] on any filesystem failure.
    pub fn write(&self, path: &Path) -> Result<(), SimError> {
        crate::fsio::write_text_atomic(path, &self.to_file_string())
            .map_err(|e| SimError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads and validates a snapshot file.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] if the file cannot be read;
    /// [`SimError::CorruptSnapshot`] / [`SimError::SnapshotVersionMismatch`]
    /// if it fails validation.
    pub fn read(path: &Path) -> Result<Self, SimError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SimError::Io(format!("{}: {e}", path.display())))?;
        Self::parse_str(&text, &path.display().to_string())
    }
}

impl Simulator {
    /// Captures the run's full evolving state at the current slot
    /// boundary. Restoring via [`Simulator::restore`] and running the
    /// remainder is bit-identical to never having stopped.
    #[must_use]
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            origin: "<memory>".to_string(),
            scenario_fp: fingerprint_debug(&self.scenario),
            fault_plan_fp: self.fault_plan.as_ref().map(fingerprint_debug),
            slots_run: self.slots_run,
            band_rng: self.band_rng.state(),
            renewable_rng: self.renewable_rng.state(),
            grid_rng: self.grid_rng.state(),
            demand_rng: self.demand_rng.state(),
            grid_chains: self
                .grid_chains
                .iter()
                .map(|c| (c.state(), c.rng().state()))
                .collect(),
            controller: self.controller.export_state(),
            relaxed: self.relaxed.as_ref().map(|r| r.export_state()),
            watchdog: self.watchdog.export_state(),
            metrics: self.metrics.clone(),
        }
    }

    /// Rebuilds a simulator from `scenario` and overlays a snapshot's
    /// state, verifying on the way that the snapshot actually belongs to
    /// this scenario: the scenario fingerprint must match, the regenerated
    /// fault plan must fingerprint to the schedule the snapshotted run was
    /// following, and every state vector must fit the rebuilt network's
    /// dimensions.
    ///
    /// # Errors
    ///
    /// [`SimError::CorruptSnapshot`] on any mismatch (never a panic);
    /// construction errors propagate as from [`Simulator::new`].
    pub fn restore(scenario: &Scenario, snap: &SimSnapshot) -> Result<Self, SimError> {
        let mut sim = Self::new(scenario)?;
        let corrupt = |detail: String| SimError::CorruptSnapshot {
            path: snap.origin.clone(),
            detail,
        };
        let scenario_fp = fingerprint_debug(scenario);
        if scenario_fp != snap.scenario_fp {
            return Err(corrupt(format!(
                "scenario fingerprint mismatch: snapshot 0x{:016x}, scenario 0x{scenario_fp:016x}",
                snap.scenario_fp
            )));
        }
        let plan_fp = sim.fault_plan.as_ref().map(fingerprint_debug);
        if plan_fp != snap.fault_plan_fp {
            return Err(corrupt(format!(
                "fault-plan fingerprint mismatch: snapshot {:?}, regenerated {plan_fp:?}",
                snap.fault_plan_fp
            )));
        }
        let nodes = sim.network().topology().len();
        let sessions = sim.network().session_count();
        let c = &snap.controller;
        let dims_ok = c.batteries.len() == nodes
            && c.data_queues.len() == sessions * nodes
            && c.delivered.len() == sessions
            && c.phantom.len() == sessions
            && c.link_queues.len() == nodes * nodes;
        if !dims_ok {
            return Err(corrupt(
                "controller state dimensions do not fit the network".to_string(),
            ));
        }
        // Dynamic-network vectors: empty (static run) or one entry per
        // node, all four together.
        let dyn_lens = [
            c.awake.len(),
            c.idle_slots.len(),
            c.ramp_remaining.len(),
            c.association.len(),
        ];
        if !(dyn_lens.iter().all(|&l| l == 0) || dyn_lens.iter().all(|&l| l == nodes)) {
            return Err(corrupt(
                "network-state dimensions do not fit the network".to_string(),
            ));
        }
        if snap.grid_chains.len() != sim.grid_chains.len() {
            return Err(corrupt(format!(
                "snapshot has {} grid chains, scenario builds {}",
                snap.grid_chains.len(),
                sim.grid_chains.len()
            )));
        }
        match (&sim.relaxed, &snap.relaxed) {
            (Some(_), Some(r)) => {
                if r.levels.len() != nodes
                    || r.q.len() != sessions * nodes
                    || r.g.len() != nodes * nodes
                {
                    return Err(corrupt(
                        "relaxed state dimensions do not fit the network".to_string(),
                    ));
                }
            }
            (None, None) => {}
            (have, snapshot) => {
                return Err(corrupt(format!(
                    "lower-bound tracking mismatch: scenario {}, snapshot {}",
                    if have.is_some() {
                        "tracks"
                    } else {
                        "does not track"
                    },
                    if snapshot.is_some() {
                        "has relaxed state"
                    } else {
                        "has none"
                    }
                )));
            }
        }
        let w = &snap.watchdog;
        if w.tail.len() > sim.watchdog.window()
            || w.tail.len() != w.slots.min(sim.watchdog.window())
        {
            return Err(corrupt(
                "watchdog tail is inconsistent with its window".to_string(),
            ));
        }

        sim.slots_run = snap.slots_run;
        sim.band_rng = Rng::from_state(snap.band_rng);
        sim.renewable_rng = Rng::from_state(snap.renewable_rng);
        sim.grid_rng = Rng::from_state(snap.grid_rng);
        sim.demand_rng = Rng::from_state(snap.demand_rng);
        if let GridModel::Markov { stay_on, stay_off } = scenario.grid_model {
            sim.grid_chains = snap
                .grid_chains
                .iter()
                .map(|&(state, rng)| {
                    MarkovOnOff::new(stay_on, stay_off, state, Rng::from_state(rng))
                        .expect("validated probabilities")
                })
                .collect();
        }
        sim.controller.import_state(&snap.controller);
        if let (Some(relaxed), Some(state)) = (&mut sim.relaxed, &snap.relaxed) {
            relaxed.import_state(state);
        }
        sim.watchdog.import_state(&snap.watchdog);
        sim.metrics = snap.metrics.clone();
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_roundtrip_is_exact() {
        for x in [0.0_f64, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE, 1e300] {
            let v = parse(&hex_f64(x)).unwrap();
            assert_eq!(f64_of(&v).unwrap().to_bits(), x.to_bits());
        }
        let v = parse(&hex_u64(u64::MAX)).unwrap();
        assert_eq!(u64_of(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn snapshot_roundtrips_through_the_file_image() {
        let mut scenario = Scenario::tiny(23);
        scenario.horizon = 12;
        scenario.track_lower_bound = true;
        let mut sim = Simulator::new(&scenario).unwrap();
        for _ in 0..7 {
            sim.step().unwrap();
        }
        let snap = sim.snapshot();
        let text = snap.to_file_string();
        let back = SimSnapshot::parse_str(&text, "<test>").unwrap();
        // `origin` differs by design; everything else must be exact.
        let mut back_cmp = back.clone();
        back_cmp.origin = snap.origin.clone();
        assert_eq!(back_cmp, snap);
    }

    #[test]
    fn torn_payload_fails_the_checksum() {
        let scenario = Scenario::tiny(29);
        let sim = Simulator::new(&scenario).unwrap();
        let text = sim.snapshot().to_file_string();
        let torn = &text[..text.len() - text.len() / 3];
        match SimSnapshot::parse_str(torn, "torn.snap") {
            Err(SimError::CorruptSnapshot { path, .. }) => assert_eq!(path, "torn.snap"),
            other => panic!("expected CorruptSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_a_typed_mismatch() {
        let scenario = Scenario::tiny(31);
        let sim = Simulator::new(&scenario).unwrap();
        let text = sim
            .snapshot()
            .to_file_string()
            .replace("\"version\":2", "\"version\":3");
        match SimSnapshot::parse_str(&text, "v3.snap") {
            Err(SimError::SnapshotVersionMismatch {
                expected, found, ..
            }) => {
                assert_eq!((expected, found), (2, 3));
            }
            other => panic!("expected SnapshotVersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_the_wrong_scenario() {
        let a = Scenario::tiny(37);
        let b = Scenario::tiny(38);
        let sim = Simulator::new(&a).unwrap();
        let snap = sim.snapshot();
        match Simulator::restore(&b, &snap) {
            Err(SimError::CorruptSnapshot { detail, .. }) => {
                assert!(detail.contains("scenario fingerprint"), "{detail}");
            }
            other => panic!("expected CorruptSnapshot, got {other:?}"),
        }
    }
}
