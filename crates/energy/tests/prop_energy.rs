//! Property tests: the battery and energy-decision invariants of paper
//! §II hold under arbitrary valid operation sequences, and the validator
//! rejects every constructed violation.

use greencell_energy::{
    Battery, CostFn, EnergyDecision, GridConnection, QuadraticCost, RenewableSplit,
};
use greencell_units::Energy;
use proptest::prelude::*;

fn j(x: f64) -> Energy {
    Energy::from_joules(x)
}

proptest! {
    /// A battery driven by always-feasible charges/discharges never leaves
    /// `[0, x^max]` and never sees `c^max + d^max > x^max` violated.
    #[test]
    fn battery_stays_in_bounds(
        capacity in 100.0f64..1000.0,
        ops in prop::collection::vec((any::<bool>(), 0.0f64..1.0), 1..200),
    ) {
        let c_limit = capacity * 0.3;
        let d_limit = capacity * 0.3;
        let mut b = Battery::new(j(capacity), j(c_limit), j(d_limit));
        for &(charge, fraction) in &ops {
            if charge {
                let amount = b.max_charge_now() * fraction;
                b.apply(amount, Energy::ZERO).expect("feasible charge");
            } else {
                let amount = b.max_discharge_now() * fraction;
                b.apply(Energy::ZERO, amount).expect("feasible discharge");
            }
            prop_assert!(b.level().as_joules() >= -1e-9);
            prop_assert!(b.level().as_joules() <= capacity + 1e-9);
        }
    }

    /// Over-limit operations are always rejected and leave the state
    /// untouched.
    #[test]
    fn battery_rejects_over_limit(
        capacity in 100.0f64..1000.0,
        level_fraction in 0.0f64..1.0,
        excess in 1.0f64..50.0,
    ) {
        let c_limit = capacity * 0.25;
        let d_limit = capacity * 0.25;
        let level = j(capacity * level_fraction);
        let mut b = Battery::with_level(j(capacity), j(c_limit), j(d_limit), level);
        let before = b.level();
        let too_much_charge = b.max_charge_now() + j(excess);
        prop_assert!(b.apply(too_much_charge, Energy::ZERO).is_err());
        prop_assert_eq!(b.level(), before);
        let too_much_discharge = b.max_discharge_now() + j(excess);
        prop_assert!(b.apply(Energy::ZERO, too_much_discharge).is_err());
        prop_assert_eq!(b.level(), before);
    }

    /// Any decision built from a feasible random split validates, and
    /// applying it keeps the battery in range.
    #[test]
    fn feasible_decisions_validate_and_apply(
        demand in 0.0f64..100.0,
        renewable in 0.0f64..150.0,
        level_fraction in 0.0f64..1.0,
        use_battery in any::<bool>(),
    ) {
        let capacity = 500.0;
        let mut battery = Battery::with_level(
            j(capacity), j(120.0), j(120.0), j(capacity * level_fraction));
        let grid = GridConnection::new(true, j(200.0));

        // Construct a feasible sourcing: renewable first, then battery or
        // grid for the remainder, leftover renewable charges if possible.
        let r_dem = renewable.min(demand);
        let mut need = demand - r_dem;
        let d = if use_battery {
            let d = need.min(battery.max_discharge_now().as_joules());
            need -= d;
            d
        } else {
            0.0
        };
        let g = need; // ≤ 100 < 200 grid cap
        let leftover = renewable - r_dem;
        let cr = if d > 1e-9 { 0.0 } else { leftover.min(battery.max_charge_now().as_joules()) };
        let waste = leftover - cr;
        let split = RenewableSplit::new(j(renewable), j(r_dem), j(cr), j(waste)).unwrap();
        let decision = EnergyDecision::new(j(g), j(0.0), split, j(d));
        decision.validate(j(demand), &battery, &grid).expect("constructed feasible");
        decision.apply_to_battery(&mut battery).expect("applies");
        prop_assert!(battery.level().as_joules() >= -1e-9);
        prop_assert!(battery.level().as_joules() <= capacity + 1e-9);
        // Grid total is what the provider pays for.
        prop_assert!((decision.grid_total().as_joules() - g).abs() < 1e-9);
    }

    /// Unbalanced decisions are always rejected.
    #[test]
    fn unbalanced_decisions_rejected(
        demand in 10.0f64..100.0,
        shortfall in 1.0f64..9.0,
    ) {
        let battery = Battery::with_level(j(500.0), j(120.0), j(120.0), j(250.0));
        let grid = GridConnection::new(true, j(200.0));
        let split = RenewableSplit::new(Energy::ZERO, Energy::ZERO, Energy::ZERO, Energy::ZERO).unwrap();
        let decision = EnergyDecision::new(j(demand - shortfall), Energy::ZERO, split, Energy::ZERO);
        prop_assert!(decision.validate(j(demand), &battery, &grid).is_err());
    }

    /// The quadratic cost is non-negative, non-decreasing, and convex on
    /// random grids, and its marginal inverse round-trips.
    #[test]
    fn quadratic_cost_properties(
        a in 0.0f64..5.0,
        b in 0.0f64..5.0,
        c in 0.0f64..5.0,
        p1 in 0.0f64..10.0,
        p2 in 0.0f64..10.0,
    ) {
        let f = QuadraticCost::new(a, b, c);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let e_lo = Energy::from_kilowatt_hours(lo);
        let e_hi = Energy::from_kilowatt_hours(hi);
        prop_assert!(f.cost(e_lo) >= 0.0);
        prop_assert!(f.cost(e_hi) + 1e-12 >= f.cost(e_lo));
        // Midpoint convexity.
        let mid = Energy::from_kilowatt_hours(0.5 * (lo + hi));
        prop_assert!(f.cost(mid) <= 0.5 * (f.cost(e_lo) + f.cost(e_hi)) + 1e-9);
        prop_assert!(greencell_energy::debug_check(&f, Energy::from_kilowatt_hours(10.0), 30));
        if a > 1e-6 {
            let mu = f.marginal(e_hi);
            let back = f.marginal_inverse(mu).unwrap();
            prop_assert!((back.as_kilowatt_hours() - hi).abs() < 1e-6);
        }
    }
}
