//! Per-node per-slot energy demand `E_i(t)` (paper Eqs. (2) and (23)).

use greencell_units::{Energy, Power, TimeDelta};

/// The demand side of a node's energy balance:
///
/// ```text
/// E_i(t) = E^const_i + E^idle_i + E^TX_i(t)                       (2)
/// E^TX_i(t) = Σ α^m_ij P^m_ij Δt  +  Σ α^m_ji P^recv_i Δt         (23)
/// ```
///
/// With the single-radio constraint (22), a node transmits on at most one
/// link-band and receives on at most one per slot, so the sums collapse to
/// at most one term each.
///
/// # Examples
///
/// ```
/// use greencell_energy::NodeEnergyModel;
/// use greencell_units::{Energy, Power, TimeDelta};
///
/// let model = NodeEnergyModel::new(
///     Energy::from_joules(10.0),      // antenna feed
///     Energy::from_joules(5.0),       // idle electronics
///     Power::from_milliwatts(100.0),  // receive power
/// );
/// let dt = TimeDelta::from_minutes(1.0);
/// let busy = model.slot_demand(Some(Power::from_watts(1.0)), false, dt);
/// assert_eq!(busy.as_joules(), 10.0 + 5.0 + 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEnergyModel {
    const_energy: Energy,
    idle_energy: Energy,
    recv_power: Power,
}

impl NodeEnergyModel {
    /// Creates a model from the per-slot antenna-feed energy `E^const`,
    /// per-slot idle energy `E^idle`, and the constant receive power
    /// `P^recv`.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative.
    #[must_use]
    pub fn new(const_energy: Energy, idle_energy: Energy, recv_power: Power) -> Self {
        assert!(
            const_energy.is_non_negative()
                && idle_energy.is_non_negative()
                && recv_power >= Power::ZERO,
            "energy model components must be non-negative"
        );
        Self {
            const_energy,
            idle_energy,
            recv_power,
        }
    }

    /// The per-slot antenna-feed energy `E^const_i`.
    #[must_use]
    pub fn const_energy(&self) -> Energy {
        self.const_energy
    }

    /// The per-slot idle energy `E^idle_i`.
    #[must_use]
    pub fn idle_energy(&self) -> Energy {
        self.idle_energy
    }

    /// The receive power `P^recv_i`.
    #[must_use]
    pub fn recv_power(&self) -> Power {
        self.recv_power
    }

    /// The traffic-serving energy `E^TX_i(t)` of Eq. (23) for a slot where
    /// the node transmits at `tx_power` (if scheduled) and/or receives.
    #[must_use]
    pub fn tx_energy(&self, tx_power: Option<Power>, receiving: bool, dt: TimeDelta) -> Energy {
        let tx = tx_power.map_or(Energy::ZERO, |p| p * dt);
        let rx = if receiving {
            self.recv_power * dt
        } else {
            Energy::ZERO
        };
        tx + rx
    }

    /// The full demand `E_i(t)` of Eq. (2).
    #[must_use]
    pub fn slot_demand(&self, tx_power: Option<Power>, receiving: bool, dt: TimeDelta) -> Energy {
        self.const_energy + self.idle_energy + self.tx_energy(tx_power, receiving, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NodeEnergyModel {
        NodeEnergyModel::new(
            Energy::from_joules(10.0),
            Energy::from_joules(5.0),
            Power::from_milliwatts(100.0),
        )
    }

    #[test]
    fn idle_slot_is_fixed_overhead_only() {
        let d = model().slot_demand(None, false, TimeDelta::from_minutes(1.0));
        assert_eq!(d.as_joules(), 15.0);
    }

    #[test]
    fn receiving_adds_recv_power() {
        let d = model().slot_demand(None, true, TimeDelta::from_minutes(1.0));
        assert!((d.as_joules() - (15.0 + 0.1 * 60.0)).abs() < 1e-12);
    }

    #[test]
    fn transmit_and_receive_both_count() {
        // With (22) a node cannot both transmit and receive, but Eq. (23)
        // is written as a sum — the model stays faithful to the formula.
        let m = model();
        let d = m.tx_energy(
            Some(Power::from_watts(2.0)),
            true,
            TimeDelta::from_seconds(30.0),
        );
        assert!((d.as_joules() - (60.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn accessors() {
        let m = model();
        assert_eq!(m.const_energy().as_joules(), 10.0);
        assert_eq!(m.idle_energy().as_joules(), 5.0);
        assert_eq!(m.recv_power().as_milliwatts(), 100.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_component_rejected() {
        let _ = NodeEnergyModel::new(Energy::from_joules(-1.0), Energy::ZERO, Power::ZERO);
    }
}
