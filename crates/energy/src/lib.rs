//! Energy substrate: storage, renewables, grid connections, generation
//! cost, and per-node energy accounting (paper §II-C/D/E).
//!
//! Each node of the paper's network owns an energy micro-grid:
//!
//! * a [`Battery`] — the storage unit with level `x_i(t)`, bounds
//!   (10)–(13), and the charge/discharge mutual exclusion (9);
//! * a renewable source whose per-slot output `R_i(t)` is split by a
//!   [`RenewableSplit`] into serving demand, charging, and curtailment;
//! * a [`GridConnection`] — always on for base stations, intermittent
//!   (`ξ_i(t)`) for users, capped by `p^max_i` (14);
//! * a [`NodeEnergyModel`] — the demand side `E_i(t) = E^const + E^idle +
//!   E^TX(t)` of Eqs. (2) and (23).
//!
//! A slot's complete sourcing choice for one node is an [`EnergyDecision`];
//! [`EnergyDecision::validate`] checks every §II constraint at once and is
//! the single gate through which the optimizer's output reaches the
//! simulator. The provider's bill is a [`CostFn`] of the total grid draw —
//! [`QuadraticCost`] is the paper's `f(P) = aP² + bP + c`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
mod cost;
mod decision;
mod demand;
mod grid;
mod renewable;

pub use battery::{Battery, BatteryError};
pub use cost::{debug_check, CostFn, QuadraticCost};
pub use decision::{EnergyDecision, EnergyDecisionError};
pub use demand::NodeEnergyModel;
pub use grid::{GridConnection, GridError};
pub use renewable::{RenewableSplit, RenewableSplitError};
