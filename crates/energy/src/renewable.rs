//! Splitting the renewable output `R_i(t)` (paper Eq. (3), plus
//! curtailment — see DESIGN.md "Substitutions").

use greencell_units::Energy;
use std::error::Error;
use std::fmt;

const EPS_JOULES: f64 = 1e-6;

/// Error constructing an inconsistent [`RenewableSplit`].
#[derive(Debug, Clone, PartialEq)]
pub enum RenewableSplitError {
    /// A component was negative.
    NegativeComponent,
    /// The components do not add up to the slot's renewable output.
    Unbalanced {
        /// The output `R_i(t)` the split was supposed to partition.
        output: Energy,
        /// Sum of the supplied components.
        assigned: Energy,
    },
}

impl fmt::Display for RenewableSplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NegativeComponent => write!(f, "renewable split components must be non-negative"),
            Self::Unbalanced { output, assigned } => {
                write!(f, "renewable split assigns {assigned} of output {output}")
            }
        }
    }
}

impl Error for RenewableSplitError {}

/// One slot's disposition of a node's renewable output:
/// `R_i(t) = r_i(t) + c^r_i(t) + waste_i(t)`.
///
/// The paper's Eq. (3) has no waste term; we add explicit curtailment so
/// the model stays feasible when the battery is full and demand is below
/// the output (a physical system spills that energy). The paper's equality
/// is the special case `curtailed == 0`.
///
/// # Examples
///
/// ```
/// use greencell_energy::RenewableSplit;
/// use greencell_units::Energy;
///
/// let split = RenewableSplit::new(
///     Energy::from_joules(10.0), // R_i(t)
///     Energy::from_joules(6.0),  // r_i: serve demand
///     Energy::from_joules(4.0),  // c^r_i: charge battery
///     Energy::ZERO,              // curtailed
/// )?;
/// assert_eq!(split.to_demand().as_joules(), 6.0);
/// # Ok::<(), greencell_energy::RenewableSplitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenewableSplit {
    output: Energy,
    to_demand: Energy,
    to_battery: Energy,
    curtailed: Energy,
}

impl RenewableSplit {
    /// Creates a validated split of `output` into demand service `r_i`,
    /// battery charge `c^r_i`, and curtailment.
    ///
    /// # Errors
    ///
    /// * [`RenewableSplitError::NegativeComponent`] — any component < 0;
    /// * [`RenewableSplitError::Unbalanced`] — components do not sum to
    ///   `output` (within a micro-joule).
    pub fn new(
        output: Energy,
        to_demand: Energy,
        to_battery: Energy,
        curtailed: Energy,
    ) -> Result<Self, RenewableSplitError> {
        if !to_demand.is_non_negative()
            || !to_battery.is_non_negative()
            || !curtailed.is_non_negative()
        {
            return Err(RenewableSplitError::NegativeComponent);
        }
        let assigned = to_demand + to_battery + curtailed;
        if (assigned.as_joules() - output.as_joules()).abs() > EPS_JOULES {
            return Err(RenewableSplitError::Unbalanced { output, assigned });
        }
        Ok(Self {
            output,
            to_demand,
            to_battery,
            curtailed,
        })
    }

    /// A split that discards the whole output (battery full, demand met).
    #[must_use]
    pub fn all_curtailed(output: Energy) -> Self {
        Self {
            output,
            to_demand: Energy::ZERO,
            to_battery: Energy::ZERO,
            curtailed: output,
        }
    }

    /// The slot output `R_i(t)` being split.
    #[must_use]
    pub fn output(&self) -> Energy {
        self.output
    }

    /// Energy serving demand directly, `r_i(t)`.
    #[must_use]
    pub fn to_demand(&self) -> Energy {
        self.to_demand
    }

    /// Energy charging the battery, `c^r_i(t)`.
    #[must_use]
    pub fn to_battery(&self) -> Energy {
        self.to_battery
    }

    /// Energy spilled.
    #[must_use]
    pub fn curtailed(&self) -> Energy {
        self.curtailed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(x: f64) -> Energy {
        Energy::from_joules(x)
    }

    #[test]
    fn balanced_split_accepted() {
        let s = RenewableSplit::new(j(10.0), j(3.0), j(5.0), j(2.0)).unwrap();
        assert_eq!(s.to_demand(), j(3.0));
        assert_eq!(s.to_battery(), j(5.0));
        assert_eq!(s.curtailed(), j(2.0));
        assert_eq!(s.output(), j(10.0));
    }

    #[test]
    fn unbalanced_split_rejected() {
        assert!(matches!(
            RenewableSplit::new(j(10.0), j(3.0), j(5.0), j(0.0)),
            Err(RenewableSplitError::Unbalanced { .. })
        ));
    }

    #[test]
    fn negative_component_rejected() {
        assert_eq!(
            RenewableSplit::new(j(1.0), j(-1.0), j(2.0), j(0.0)),
            Err(RenewableSplitError::NegativeComponent)
        );
    }

    #[test]
    fn all_curtailed_helper() {
        let s = RenewableSplit::all_curtailed(j(7.0));
        assert_eq!(s.curtailed(), j(7.0));
        assert_eq!(s.to_demand(), Energy::ZERO);
    }

    #[test]
    fn paper_equality_is_the_zero_curtailment_case() {
        // Eq. (3): R = c^r + r exactly.
        let s = RenewableSplit::new(j(4.0), j(1.5), j(2.5), Energy::ZERO).unwrap();
        assert_eq!(s.curtailed(), Energy::ZERO);
    }
}
