//! Power-grid connections and per-slot draws (paper Eqs. (5), (6), (14)).

use greencell_units::Energy;
use std::error::Error;
use std::fmt;

const EPS_JOULES: f64 = 1e-6;

/// Error validating a grid draw against a [`GridConnection`].
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// Energy drawn while disconnected (`ω_i(t) = 0`).
    Disconnected,
    /// Total draw exceeds the connection limit `p^max_i` (14).
    ExceedsLimit {
        /// Requested total draw `g_i + c^g_i`.
        requested: Energy,
        /// The connection's `p^max_i`.
        limit: Energy,
    },
    /// A negative amount was supplied.
    NegativeAmount,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disconnected => write!(f, "node is not connected to the grid this slot"),
            Self::ExceedsLimit { requested, limit } => {
                write!(f, "grid draw {requested} exceeds connection limit {limit}")
            }
            Self::NegativeAmount => write!(f, "grid draws must be non-negative"),
        }
    }
}

impl Error for GridError {}

/// One slot's grid connectivity of a node: the indicator `ω_i(t)` of
/// Eq. (6) plus the physical draw limit `p^max_i` of Eq. (14).
///
/// Base stations construct this with `connected = true` every slot; mobile
/// users sample `ξ_i(t)` and may be offline.
///
/// # Examples
///
/// ```
/// use greencell_energy::GridConnection;
/// use greencell_units::Energy;
///
/// let grid = GridConnection::new(true, Energy::from_kilowatt_hours(0.2));
/// grid.check_draw(Energy::from_kilowatt_hours(0.15))?;
/// assert!(grid.check_draw(Energy::from_kilowatt_hours(0.25)).is_err());
/// # Ok::<(), greencell_energy::GridError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConnection {
    connected: bool,
    draw_limit: Energy,
}

impl GridConnection {
    /// Creates a connection state for one slot.
    ///
    /// # Panics
    ///
    /// Panics if `draw_limit < 0`.
    #[must_use]
    pub fn new(connected: bool, draw_limit: Energy) -> Self {
        assert!(
            draw_limit.is_non_negative(),
            "grid draw limit must be non-negative"
        );
        Self {
            connected,
            draw_limit,
        }
    }

    /// A connection that is offline this slot (`ω_i(t) = 0`).
    #[must_use]
    pub fn offline() -> Self {
        Self {
            connected: false,
            draw_limit: Energy::ZERO,
        }
    }

    /// The indicator `ω_i(t)`.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// The draw limit `p^max_i`; meaningful only while connected.
    #[must_use]
    pub fn draw_limit(&self) -> Energy {
        self.draw_limit
    }

    /// The largest total draw available this slot: `p^max_i` when
    /// connected, zero otherwise.
    #[must_use]
    pub fn max_draw_now(&self) -> Energy {
        if self.connected {
            self.draw_limit
        } else {
            Energy::ZERO
        }
    }

    /// Validates a total draw `p_i(t) = g_i(t) + c^g_i(t)` against
    /// Eq. (14).
    ///
    /// # Errors
    ///
    /// * [`GridError::NegativeAmount`] — `total < 0`;
    /// * [`GridError::Disconnected`] — positive draw while offline;
    /// * [`GridError::ExceedsLimit`] — draw above `p^max_i`.
    pub fn check_draw(&self, total: Energy) -> Result<(), GridError> {
        if !total.is_non_negative() {
            return Err(GridError::NegativeAmount);
        }
        if total.as_joules() <= EPS_JOULES {
            return Ok(());
        }
        if !self.connected {
            return Err(GridError::Disconnected);
        }
        if total.as_joules() > self.draw_limit.as_joules() + EPS_JOULES {
            return Err(GridError::ExceedsLimit {
                requested: total,
                limit: self.draw_limit,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kwh(x: f64) -> Energy {
        Energy::from_kilowatt_hours(x)
    }

    #[test]
    fn connected_draw_within_limit_ok() {
        let g = GridConnection::new(true, kwh(0.2));
        assert!(g.check_draw(kwh(0.2)).is_ok());
        assert!(g.check_draw(Energy::ZERO).is_ok());
        assert_eq!(g.max_draw_now(), kwh(0.2));
    }

    #[test]
    fn over_limit_rejected() {
        let g = GridConnection::new(true, kwh(0.2));
        assert!(matches!(
            g.check_draw(kwh(0.21)),
            Err(GridError::ExceedsLimit { .. })
        ));
    }

    #[test]
    fn disconnected_rejects_positive_draw() {
        let g = GridConnection::offline();
        assert_eq!(g.check_draw(kwh(0.01)), Err(GridError::Disconnected));
        assert!(g.check_draw(Energy::ZERO).is_ok());
        assert_eq!(g.max_draw_now(), Energy::ZERO);
        assert!(!g.is_connected());
    }

    #[test]
    fn negative_rejected() {
        let g = GridConnection::new(true, kwh(0.2));
        assert_eq!(
            g.check_draw(Energy::from_joules(-1.0)),
            Err(GridError::NegativeAmount)
        );
    }

    #[test]
    fn error_display() {
        assert!(GridError::Disconnected
            .to_string()
            .contains("not connected"));
    }
}
