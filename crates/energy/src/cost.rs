//! The provider's energy generation cost `f(P(t))` (paper §II-E).

use greencell_units::Energy;

/// A non-negative, non-decreasing, convex cost of the total per-slot grid
/// draw `P(t)` — the assumptions the paper places on `f(·)`.
///
/// The marginal cost drives the S4 energy-management solver: with `f`
/// convex, [`CostFn::marginal`] is non-decreasing in `P`, which is what
/// makes the marginal-price bisection exact (see `greencell-core`).
///
/// Implementations must keep the three properties; [`debug_check`] verifies
/// them numerically on a grid and is used by tests and the property suite.
pub trait CostFn {
    /// The cost of drawing `p` from the grid in one slot (currency units).
    fn cost(&self, p: Energy) -> f64;

    /// The derivative `f'(p)` in currency units per kilowatt-hour.
    fn marginal(&self, p: Energy) -> f64;

    /// The largest marginal over `[0, p_max]` — the paper's `γ_max`, used
    /// to shift the battery queues (`z_i = x_i − Vγ_max − d^max_i`).
    fn max_marginal(&self, p_max: Energy) -> f64 {
        self.marginal(p_max)
    }
}

/// Numerically verifies non-negativity, monotonicity, and convexity of a
/// [`CostFn`] on `[0, p_max]` with `steps` sample points.
///
/// Returns `true` if all three properties hold (up to a small slack).
///
/// # Panics
///
/// Panics if `steps < 2`.
#[must_use]
pub fn debug_check<F: CostFn + ?Sized>(f: &F, p_max: Energy, steps: usize) -> bool {
    assert!(steps >= 2, "need at least two samples");
    let kwh_max = p_max.as_kilowatt_hours();
    let xs: Vec<f64> = (0..steps)
        .map(|k| kwh_max * k as f64 / (steps - 1) as f64)
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| f.cost(Energy::from_kilowatt_hours(x)))
        .collect();
    let slack = 1e-9 * (1.0 + ys.iter().cloned().fold(0.0, f64::max).abs());
    // Non-negative and non-decreasing.
    for w in ys.windows(2) {
        if w[0] < -slack || w[1] < w[0] - slack {
            return false;
        }
    }
    // Midpoint convexity on consecutive triples.
    for w in ys.windows(3) {
        if w[1] > 0.5 * (w[0] + w[2]) + slack {
            return false;
        }
    }
    true
}

/// The paper's quadratic cost `f(P) = a·P² + b·P + c`, with `P` in
/// kilowatt-hours (the evaluation uses `a = 0.8`, `b = 0.2`, `c = 0`).
///
/// # Examples
///
/// ```
/// use greencell_energy::{CostFn, QuadraticCost};
/// use greencell_units::Energy;
///
/// let f = QuadraticCost::new(0.8, 0.2, 0.0);
/// let p = Energy::from_kilowatt_hours(2.0);
/// assert_eq!(f.cost(p), 0.8 * 4.0 + 0.2 * 2.0);
/// assert_eq!(f.marginal(p), 2.0 * 0.8 * 2.0 + 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticCost {
    a: f64,
    b: f64,
    c: f64,
}

impl QuadraticCost {
    /// Creates `f(P) = aP² + bP + c`.
    ///
    /// # Panics
    ///
    /// Panics if `a < 0`, `b < 0`, or `c < 0` — any of those would break
    /// convexity or monotonicity on `P ≥ 0`.
    #[must_use]
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        assert!(
            a >= 0.0 && b >= 0.0 && c >= 0.0,
            "quadratic cost coefficients must be non-negative"
        );
        Self { a, b, c }
    }

    /// The paper's evaluation cost: `0.8P² + 0.2P`.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(0.8, 0.2, 0.0)
    }

    /// The quadratic coefficient `a`.
    #[must_use]
    pub fn quadratic(&self) -> f64 {
        self.a
    }

    /// The linear coefficient `b`.
    #[must_use]
    pub fn linear(&self) -> f64 {
        self.b
    }

    /// The constant term `c`.
    #[must_use]
    pub fn constant(&self) -> f64 {
        self.c
    }

    /// Inverse of the marginal: the draw `P` at which `f'(P) = mu`, clamped
    /// to `P ≥ 0`. For `a = 0` (linear cost) returns `None` — every draw
    /// has the same marginal.
    #[must_use]
    pub fn marginal_inverse(&self, mu: f64) -> Option<Energy> {
        if self.a == 0.0 {
            None
        } else {
            Some(Energy::from_kilowatt_hours(
                ((mu - self.b) / (2.0 * self.a)).max(0.0),
            ))
        }
    }
}

impl CostFn for QuadraticCost {
    fn cost(&self, p: Energy) -> f64 {
        let x = p.as_kilowatt_hours();
        self.a * x * x + self.b * x + self.c
    }

    fn marginal(&self, p: Energy) -> f64 {
        2.0 * self.a * p.as_kilowatt_hours() + self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let f = QuadraticCost::paper_default();
        assert_eq!(f.quadratic(), 0.8);
        assert_eq!(f.linear(), 0.2);
        assert_eq!(f.constant(), 0.0);
        assert_eq!(f.cost(Energy::ZERO), 0.0);
    }

    #[test]
    fn cost_and_marginal_match_closed_form() {
        let f = QuadraticCost::new(2.0, 1.0, 0.5);
        let p = Energy::from_kilowatt_hours(3.0);
        assert_eq!(f.cost(p), 2.0 * 9.0 + 3.0 + 0.5);
        assert_eq!(f.marginal(p), 13.0);
        assert_eq!(f.max_marginal(p), 13.0);
    }

    #[test]
    fn marginal_inverse_round_trips() {
        let f = QuadraticCost::paper_default();
        let p = Energy::from_kilowatt_hours(1.7);
        let mu = f.marginal(p);
        let back = f.marginal_inverse(mu).unwrap();
        assert!((back.as_kilowatt_hours() - 1.7).abs() < 1e-12);
        // Below-minimum marginal clamps to zero draw.
        assert_eq!(f.marginal_inverse(0.0).unwrap().as_kilowatt_hours(), 0.0);
    }

    #[test]
    fn linear_cost_has_no_marginal_inverse() {
        let f = QuadraticCost::new(0.0, 1.0, 0.0);
        assert!(f.marginal_inverse(1.0).is_none());
    }

    #[test]
    fn debug_check_accepts_valid_cost() {
        let f = QuadraticCost::paper_default();
        assert!(debug_check(&f, Energy::from_kilowatt_hours(10.0), 100));
    }

    #[test]
    fn debug_check_rejects_concave() {
        struct Concave;
        impl CostFn for Concave {
            fn cost(&self, p: Energy) -> f64 {
                p.as_kilowatt_hours().sqrt()
            }
            fn marginal(&self, p: Energy) -> f64 {
                0.5 / p.as_kilowatt_hours().sqrt().max(1e-9)
            }
        }
        assert!(!debug_check(
            &Concave,
            Energy::from_kilowatt_hours(10.0),
            100
        ));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_coefficient_rejected() {
        let _ = QuadraticCost::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn usable_as_trait_object() {
        let f: Box<dyn CostFn> = Box::new(QuadraticCost::paper_default());
        assert!(f.cost(Energy::from_kilowatt_hours(1.0)) > 0.0);
        assert!(debug_check(
            f.as_ref(),
            Energy::from_kilowatt_hours(1.0),
            10
        ));
    }
}
