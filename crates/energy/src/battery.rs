//! The per-node energy storage unit (paper Eqs. (4), (9)–(13)).

use greencell_units::Energy;
use std::error::Error;
use std::fmt;

/// Slack for floating-point comparisons on energy amounts, in joules.
/// One micro-joule is far below any physically meaningful quantity here.
const EPS_JOULES: f64 = 1e-6;

/// Error applying an infeasible charge/discharge to a [`Battery`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatteryError {
    /// Charging and discharging in the same slot — constraint (9).
    SimultaneousChargeDischarge,
    /// Charge exceeds `min{c^max, x^max − x}` — constraint (11).
    ChargeExceedsLimit {
        /// Requested charge.
        requested: Energy,
        /// Largest feasible charge this slot.
        limit: Energy,
    },
    /// Discharge exceeds `min{d^max, x}` — constraint (12).
    DischargeExceedsLimit {
        /// Requested discharge.
        requested: Energy,
        /// Largest feasible discharge this slot.
        limit: Energy,
    },
    /// A negative amount was supplied.
    NegativeAmount,
}

impl fmt::Display for BatteryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SimultaneousChargeDischarge => {
                write!(f, "cannot charge and discharge in the same slot")
            }
            Self::ChargeExceedsLimit { requested, limit } => {
                write!(f, "charge {requested} exceeds slot limit {limit}")
            }
            Self::DischargeExceedsLimit { requested, limit } => {
                write!(f, "discharge {requested} exceeds slot limit {limit}")
            }
            Self::NegativeAmount => write!(f, "energy amounts must be non-negative"),
        }
    }
}

impl Error for BatteryError {}

/// An energy storage unit with level `x_i(t) ∈ [0, x^max_i]`, per-slot
/// charge limit `c^max_i`, and per-slot discharge limit `d^max_i`.
///
/// Construction enforces the paper's sizing constraint (13),
/// `c^max + d^max ≤ x^max`; [`Battery::apply`] enforces the per-slot
/// constraints (9), (11), and (12) and advances the level by the queue law
/// (4), `x(t+1) = x(t) + c(t) − d(t)`.
///
/// # Examples
///
/// ```
/// use greencell_energy::Battery;
/// use greencell_units::Energy;
///
/// let mut b = Battery::new(
///     Energy::from_kilowatt_hours(1.0),  // x^max
///     Energy::from_kilowatt_hours(0.1),  // c^max
///     Energy::from_kilowatt_hours(0.1),  // d^max
/// );
/// b.apply(Energy::from_kilowatt_hours(0.05), Energy::ZERO)?;
/// assert_eq!(b.level().as_kilowatt_hours(), 0.05);
/// # Ok::<(), greencell_energy::BatteryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    level: Energy,
    capacity: Energy,
    charge_limit: Energy,
    discharge_limit: Energy,
    charge_efficiency: f64,
    charge_blocked: bool,
}

impl Battery {
    /// Creates an empty battery (`x(0) = 0`, as in §IV-B's `z(0)` setup).
    ///
    /// # Panics
    ///
    /// Panics if any argument is negative or if
    /// `charge_limit + discharge_limit > capacity` (constraint (13)).
    #[must_use]
    pub fn new(capacity: Energy, charge_limit: Energy, discharge_limit: Energy) -> Self {
        assert!(
            capacity.is_non_negative()
                && charge_limit.is_non_negative()
                && discharge_limit.is_non_negative(),
            "battery parameters must be non-negative"
        );
        assert!(
            (charge_limit + discharge_limit).as_joules() <= capacity.as_joules() + EPS_JOULES,
            "constraint (13) violated: c^max + d^max must not exceed x^max"
        );
        Self {
            level: Energy::ZERO,
            capacity,
            charge_limit,
            discharge_limit,
            charge_efficiency: 1.0,
            charge_blocked: false,
        }
    }

    /// Creates an empty battery whose charging loses energy: each unit of
    /// charging energy drawn stores only `efficiency` units (Eq. (4)
    /// becomes `x(t+1) = x(t) + η·c(t) − d(t)` — an extension of the
    /// paper's lossless model; `η = 1` recovers it exactly).
    ///
    /// # Panics
    ///
    /// As [`Battery::new`], plus if `efficiency ∉ (0, 1]`.
    #[must_use]
    pub fn with_efficiency(
        capacity: Energy,
        charge_limit: Energy,
        discharge_limit: Energy,
        efficiency: f64,
    ) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "charge efficiency {efficiency} outside (0, 1]"
        );
        let mut b = Self::new(capacity, charge_limit, discharge_limit);
        b.charge_efficiency = efficiency;
        b
    }

    /// Creates a battery at a given initial level.
    ///
    /// # Panics
    ///
    /// As [`Battery::new`], plus if `initial ∉ [0, capacity]`.
    #[must_use]
    pub fn with_level(
        capacity: Energy,
        charge_limit: Energy,
        discharge_limit: Energy,
        initial: Energy,
    ) -> Self {
        let mut b = Self::new(capacity, charge_limit, discharge_limit);
        assert!(
            initial.is_non_negative() && initial.as_joules() <= capacity.as_joules() + EPS_JOULES,
            "initial level outside [0, x^max]"
        );
        b.level = initial;
        b
    }

    /// Rebuilds a battery from its full captured state — the restore half
    /// of snapshotting. Unlike [`Battery::new`], the capacity and limits
    /// here may already be fade-scaled (see [`Battery::fade_capacity`]),
    /// so every runtime-mutable field is taken verbatim.
    ///
    /// # Panics
    ///
    /// As [`Battery::with_efficiency`], plus if `level ∉ [0, capacity]`.
    #[must_use]
    pub fn from_parts(
        capacity: Energy,
        charge_limit: Energy,
        discharge_limit: Energy,
        efficiency: f64,
        level: Energy,
        charge_blocked: bool,
    ) -> Self {
        let mut b = Self::with_efficiency(capacity, charge_limit, discharge_limit, efficiency);
        assert!(
            level.is_non_negative() && level.as_joules() <= capacity.as_joules() + EPS_JOULES,
            "level outside [0, x^max]"
        );
        b.level = level;
        b.charge_blocked = charge_blocked;
        b
    }

    /// The current level `x_i(t)`.
    #[must_use]
    pub fn level(&self) -> Energy {
        self.level
    }

    /// The capacity `x^max_i`.
    #[must_use]
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// The per-slot charge limit `c^max_i`.
    #[must_use]
    pub fn charge_limit(&self) -> Energy {
        self.charge_limit
    }

    /// The per-slot discharge limit `d^max_i`.
    #[must_use]
    pub fn discharge_limit(&self) -> Energy {
        self.discharge_limit
    }

    /// The charge efficiency `η ∈ (0, 1]`: stored energy per unit of
    /// charging energy drawn (`1.0` = the paper's lossless model).
    #[must_use]
    pub fn charge_efficiency(&self) -> f64 {
        self.charge_efficiency
    }

    /// The largest charge *drawable* this slot:
    /// `min{c^max, (x^max − x(t))/η}` — the generalization of constraint
    /// (11) under charge efficiency `η` (at `η = 1` it is exactly (11)).
    /// Zero while the charge path is blocked (see
    /// [`Battery::set_charge_blocked`]).
    #[must_use]
    pub fn max_charge_now(&self) -> Energy {
        if self.charge_blocked {
            return Energy::ZERO;
        }
        self.charge_limit
            .min((self.capacity - self.level) / self.charge_efficiency)
            .max(Energy::ZERO)
    }

    /// Whether the charge path is currently failed.
    #[must_use]
    pub fn charge_blocked(&self) -> bool {
        self.charge_blocked
    }

    /// Fails (`true`) or repairs (`false`) the charge path — a transient
    /// hardware fault: while blocked the battery accepts no charge
    /// ([`Battery::max_charge_now`] reports zero) but discharges normally.
    pub fn set_charge_blocked(&mut self, blocked: bool) {
        self.charge_blocked = blocked;
    }

    /// Permanently fades the capacity to `factor · x^max` (battery aging or
    /// cell failure). The per-slot charge/discharge limits are scaled by
    /// the same factor so the sizing constraint (13),
    /// `c^max + d^max ≤ x^max`, keeps holding, and the level is clamped
    /// into the new capacity.
    ///
    /// # Panics
    ///
    /// Panics if `factor ∉ (0, 1]`.
    pub fn fade_capacity(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "fade factor {factor} outside (0, 1]"
        );
        self.capacity = self.capacity * factor;
        self.charge_limit = self.charge_limit * factor;
        self.discharge_limit = self.discharge_limit * factor;
        self.level = self.level.min(self.capacity);
    }

    /// The largest discharge available this slot:
    /// `min{d^max, x(t)}` (constraint (12)).
    #[must_use]
    pub fn max_discharge_now(&self) -> Energy {
        self.discharge_limit.min(self.level).max(Energy::ZERO)
    }

    /// Applies one slot's charge `c` and discharge `d`, advancing the level
    /// by Eq. (4).
    ///
    /// # Errors
    ///
    /// * [`BatteryError::NegativeAmount`] — `c < 0` or `d < 0`;
    /// * [`BatteryError::SimultaneousChargeDischarge`] — both positive (9);
    /// * [`BatteryError::ChargeExceedsLimit`] — `c` above (11)'s bound;
    /// * [`BatteryError::DischargeExceedsLimit`] — `d` above (12)'s bound.
    ///
    /// On error the level is unchanged.
    pub fn apply(&mut self, c: Energy, d: Energy) -> Result<(), BatteryError> {
        if !c.is_non_negative() || !d.is_non_negative() {
            return Err(BatteryError::NegativeAmount);
        }
        if c.as_joules() > EPS_JOULES && d.as_joules() > EPS_JOULES {
            return Err(BatteryError::SimultaneousChargeDischarge);
        }
        let c_limit = self.max_charge_now();
        if c.as_joules() > c_limit.as_joules() + EPS_JOULES {
            return Err(BatteryError::ChargeExceedsLimit {
                requested: c,
                limit: c_limit,
            });
        }
        let d_limit = self.max_discharge_now();
        if d.as_joules() > d_limit.as_joules() + EPS_JOULES {
            return Err(BatteryError::DischargeExceedsLimit {
                requested: d,
                limit: d_limit,
            });
        }
        self.level =
            (self.level + c * self.charge_efficiency - d).clamp(Energy::ZERO, self.capacity);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kwh(x: f64) -> Energy {
        Energy::from_kilowatt_hours(x)
    }

    fn battery() -> Battery {
        Battery::new(kwh(1.0), kwh(0.1), kwh(0.06))
    }

    #[test]
    fn charge_then_discharge_tracks_level() {
        let mut b = battery();
        b.apply(kwh(0.1), Energy::ZERO).unwrap();
        b.apply(kwh(0.1), Energy::ZERO).unwrap();
        assert!((b.level().as_kilowatt_hours() - 0.2).abs() < 1e-12);
        b.apply(Energy::ZERO, kwh(0.06)).unwrap();
        assert!((b.level().as_kilowatt_hours() - 0.14).abs() < 1e-12);
    }

    #[test]
    fn mutual_exclusion_enforced() {
        let mut b = battery();
        b.apply(kwh(0.05), Energy::ZERO).unwrap();
        assert_eq!(
            b.apply(kwh(0.01), kwh(0.01)),
            Err(BatteryError::SimultaneousChargeDischarge)
        );
    }

    #[test]
    fn charge_limit_and_headroom() {
        let mut b = Battery::with_level(kwh(1.0), kwh(0.1), kwh(0.06), kwh(0.95));
        assert!((b.max_charge_now().as_kilowatt_hours() - 0.05).abs() < 1e-12);
        assert!(matches!(
            b.apply(kwh(0.06), Energy::ZERO),
            Err(BatteryError::ChargeExceedsLimit { .. })
        ));
        b.apply(kwh(0.05), Energy::ZERO).unwrap();
        assert!((b.level().as_kilowatt_hours() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn discharge_limited_by_level() {
        let mut b = Battery::with_level(kwh(1.0), kwh(0.1), kwh(0.06), kwh(0.01));
        assert!((b.max_discharge_now().as_kilowatt_hours() - 0.01).abs() < 1e-15);
        assert!(matches!(
            b.apply(Energy::ZERO, kwh(0.02)),
            Err(BatteryError::DischargeExceedsLimit { .. })
        ));
        b.apply(Energy::ZERO, kwh(0.01)).unwrap();
        assert_eq!(b.level(), Energy::ZERO);
    }

    #[test]
    fn error_leaves_level_unchanged() {
        let mut b = Battery::with_level(kwh(1.0), kwh(0.1), kwh(0.06), kwh(0.5));
        let before = b.level();
        let _ = b.apply(kwh(0.5), Energy::ZERO); // over c^max
        assert_eq!(b.level(), before);
    }

    #[test]
    fn negative_amount_rejected() {
        let mut b = battery();
        assert_eq!(
            b.apply(Energy::from_joules(-1.0), Energy::ZERO),
            Err(BatteryError::NegativeAmount)
        );
    }

    #[test]
    #[should_panic(expected = "constraint (13)")]
    fn oversized_limits_rejected() {
        let _ = Battery::new(kwh(0.1), kwh(0.06), kwh(0.06));
    }

    #[test]
    #[should_panic(expected = "initial level")]
    fn overfull_initial_rejected() {
        let _ = Battery::with_level(kwh(1.0), kwh(0.1), kwh(0.06), kwh(1.5));
    }

    #[test]
    fn error_display() {
        let e = BatteryError::SimultaneousChargeDischarge;
        assert!(e.to_string().contains("same slot"));
    }

    #[test]
    fn from_parts_roundtrips_a_faded_blocked_battery() {
        let mut b = Battery::with_efficiency(kwh(1.0), kwh(0.1), kwh(0.06), 0.9);
        b.apply(kwh(0.1), Energy::ZERO).unwrap();
        b.fade_capacity(0.7);
        b.set_charge_blocked(true);
        let rebuilt = Battery::from_parts(
            b.capacity(),
            b.charge_limit(),
            b.discharge_limit(),
            b.charge_efficiency(),
            b.level(),
            b.charge_blocked(),
        );
        assert_eq!(rebuilt, b);
    }

    #[test]
    #[should_panic(expected = "level outside")]
    fn from_parts_rejects_overfull_level() {
        let _ = Battery::from_parts(kwh(1.0), kwh(0.1), kwh(0.06), 1.0, kwh(1.5), false);
    }

    #[test]
    fn lossy_charging_stores_less() {
        let mut b = Battery::with_efficiency(kwh(1.0), kwh(0.1), kwh(0.06), 0.8);
        assert_eq!(b.charge_efficiency(), 0.8);
        b.apply(kwh(0.1), Energy::ZERO).unwrap();
        assert!((b.level().as_kilowatt_hours() - 0.08).abs() < 1e-12);
        // Discharging is lossless in this model.
        b.apply(Energy::ZERO, kwh(0.06)).unwrap();
        assert!((b.level().as_kilowatt_hours() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn lossy_headroom_allows_larger_draw() {
        // 0.05 kWh of headroom at η = 0.5 accepts 0.1 kWh of drawn charge.
        let mut b = Battery::with_efficiency(kwh(1.0), kwh(0.2), kwh(0.06), 0.5);
        b.apply(kwh(0.2), Energy::ZERO).unwrap(); // stores 0.1
        for _ in 0..8 {
            b.apply(b.max_charge_now(), Energy::ZERO).unwrap();
        }
        assert!(b.level().as_kilowatt_hours() <= 1.0 + 1e-12);
        let near_full = Battery::with_level(kwh(1.0), kwh(0.2), kwh(0.06), kwh(0.95));
        assert!(near_full.max_charge_now().as_kilowatt_hours() <= 0.05 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_efficiency_rejected() {
        let _ = Battery::with_efficiency(kwh(1.0), kwh(0.1), kwh(0.06), 0.0);
    }

    #[test]
    fn charge_block_zeroes_headroom_and_is_reversible() {
        let mut b = battery();
        assert!(!b.charge_blocked());
        assert!(b.max_charge_now() > Energy::ZERO);
        b.set_charge_blocked(true);
        assert!(b.charge_blocked());
        assert_eq!(b.max_charge_now(), Energy::ZERO);
        // Discharge is unaffected by a failed charge path.
        b.set_charge_blocked(false);
        b.apply(kwh(0.1), Energy::ZERO).unwrap();
        b.set_charge_blocked(true);
        assert_eq!(b.max_discharge_now(), kwh(0.06));
        b.apply(Energy::ZERO, kwh(0.06)).unwrap();
        b.set_charge_blocked(false);
        assert!(b.max_charge_now() > Energy::ZERO);
    }

    #[test]
    fn fade_scales_limits_and_clamps_level() {
        let mut b = Battery::with_level(kwh(1.0), kwh(0.1), kwh(0.06), kwh(0.9));
        b.fade_capacity(0.5);
        assert!((b.capacity().as_kilowatt_hours() - 0.5).abs() < 1e-12);
        // Level clamped into the new capacity.
        assert!((b.level().as_kilowatt_hours() - 0.5).abs() < 1e-12);
        // Sizing constraint (13) still holds after fading.
        assert!(
            b.max_charge_now().as_joules() + b.max_discharge_now().as_joules()
                <= b.capacity().as_joules() + 1e-9
        );
        // Faded battery still charges/discharges within the scaled limits.
        b.apply(Energy::ZERO, b.max_discharge_now()).unwrap();
        b.apply(b.max_charge_now(), Energy::ZERO).unwrap();
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn fade_factor_above_one_rejected() {
        battery().fade_capacity(1.5);
    }
}
