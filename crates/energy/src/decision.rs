//! A node's complete per-slot energy sourcing decision and its validation.

use crate::{Battery, BatteryError, GridConnection, GridError, RenewableSplit};
use greencell_units::Energy;
use std::error::Error;
use std::fmt;

const EPS_JOULES: f64 = 1e-4;

/// Error validating an [`EnergyDecision`] against the slot's state.
#[derive(Debug, Clone, PartialEq)]
pub enum EnergyDecisionError {
    /// Supply does not equal the node's demand:
    /// `E_i(t) = ω_i g_i + r_i + d_i` (§II-E).
    Unbalanced {
        /// What the decision supplies toward demand.
        supplied: Energy,
        /// The node's actual demand `E_i(t)`.
        demand: Energy,
    },
    /// The grid draw violates connectivity or the limit (14).
    Grid(GridError),
    /// The battery operation violates (9), (11), or (12).
    Battery(BatteryError),
    /// A component was negative.
    NegativeAmount,
}

impl fmt::Display for EnergyDecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unbalanced { supplied, demand } => {
                write!(f, "decision supplies {supplied} against demand {demand}")
            }
            Self::Grid(e) => write!(f, "grid violation: {e}"),
            Self::Battery(e) => write!(f, "battery violation: {e}"),
            Self::NegativeAmount => write!(f, "decision components must be non-negative"),
        }
    }
}

impl Error for EnergyDecisionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Grid(e) => Some(e),
            Self::Battery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GridError> for EnergyDecisionError {
    fn from(e: GridError) -> Self {
        Self::Grid(e)
    }
}

impl From<BatteryError> for EnergyDecisionError {
    fn from(e: BatteryError) -> Self {
        Self::Battery(e)
    }
}

/// One node's complete per-slot sourcing choice — the S4 variables
/// `(g_i, c^g_i, r_i, c^r_i, d_i)` of the paper plus curtailment:
///
/// * `grid_to_demand` — `g_i(t)`, grid energy serving demand;
/// * `grid_to_battery` — `c^g_i(t)`, grid energy charging the battery;
/// * `renewable` — the [`RenewableSplit`] `(r_i, c^r_i, waste)`;
/// * `discharge` — `d_i(t)`, battery energy serving demand.
///
/// The total battery charge is `c_i = c^r_i + ω_i c^g_i` (Eq. (5)); the
/// total grid draw is `p_i = ω_i (g_i + c^g_i)` (Eq. (14)).
///
/// # Examples
///
/// ```
/// use greencell_energy::{Battery, EnergyDecision, GridConnection, RenewableSplit};
/// use greencell_units::Energy;
///
/// let battery = Battery::new(
///     Energy::from_joules(100.0),
///     Energy::from_joules(40.0),
///     Energy::from_joules(40.0),
/// );
/// let grid = GridConnection::new(true, Energy::from_joules(50.0));
/// // Demand 30 J; renewable output 20 J → 20 to demand, 10 from grid,
/// // plus 15 J of grid charging.
/// let d = EnergyDecision::new(
///     Energy::from_joules(10.0),
///     Energy::from_joules(15.0),
///     RenewableSplit::new(Energy::from_joules(20.0), Energy::from_joules(20.0),
///                         Energy::ZERO, Energy::ZERO)?,
///     Energy::ZERO,
/// );
/// d.validate(Energy::from_joules(30.0), &battery, &grid)?;
/// assert_eq!(d.grid_total().as_joules(), 25.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDecision {
    grid_to_demand: Energy,
    grid_to_battery: Energy,
    renewable: RenewableSplit,
    discharge: Energy,
}

impl EnergyDecision {
    /// Creates a decision; validation happens in
    /// [`EnergyDecision::validate`].
    #[must_use]
    pub fn new(
        grid_to_demand: Energy,
        grid_to_battery: Energy,
        renewable: RenewableSplit,
        discharge: Energy,
    ) -> Self {
        Self {
            grid_to_demand,
            grid_to_battery,
            renewable,
            discharge,
        }
    }

    /// The all-zero decision for a node with zero demand and renewable
    /// output fully curtailed.
    #[must_use]
    pub fn idle(renewable_output: Energy) -> Self {
        Self {
            grid_to_demand: Energy::ZERO,
            grid_to_battery: Energy::ZERO,
            renewable: RenewableSplit::all_curtailed(renewable_output),
            discharge: Energy::ZERO,
        }
    }

    /// Grid energy serving demand, `g_i(t)`.
    #[must_use]
    pub fn grid_to_demand(&self) -> Energy {
        self.grid_to_demand
    }

    /// Grid energy charging the battery, `c^g_i(t)`.
    #[must_use]
    pub fn grid_to_battery(&self) -> Energy {
        self.grid_to_battery
    }

    /// The renewable disposition `(r_i, c^r_i, waste)`.
    #[must_use]
    pub fn renewable(&self) -> &RenewableSplit {
        &self.renewable
    }

    /// Battery discharge serving demand, `d_i(t)`.
    #[must_use]
    pub fn discharge(&self) -> Energy {
        self.discharge
    }

    /// Total grid draw `p_i(t) = g_i + c^g_i` — the node's contribution to
    /// the provider's bill.
    #[must_use]
    pub fn grid_total(&self) -> Energy {
        self.grid_to_demand + self.grid_to_battery
    }

    /// Total battery charge `c_i(t) = c^r_i + c^g_i` (Eq. (5) with
    /// `ω_i = 1`; validation rejects grid charging while disconnected).
    #[must_use]
    pub fn charge_total(&self) -> Energy {
        self.renewable.to_battery() + self.grid_to_battery
    }

    /// Energy supplied toward demand: `g_i + r_i + d_i`.
    #[must_use]
    pub fn supplied(&self) -> Energy {
        self.grid_to_demand + self.renewable.to_demand() + self.discharge
    }

    /// Validates every §II constraint for this slot.
    ///
    /// # Errors
    ///
    /// * [`EnergyDecisionError::NegativeAmount`];
    /// * [`EnergyDecisionError::Grid`] — connectivity or limit (14);
    /// * [`EnergyDecisionError::Battery`] — (9), (11), (12);
    /// * [`EnergyDecisionError::Unbalanced`] — supply ≠ `demand`.
    pub fn validate(
        &self,
        demand: Energy,
        battery: &Battery,
        grid: &GridConnection,
    ) -> Result<(), EnergyDecisionError> {
        if !self.grid_to_demand.is_non_negative()
            || !self.grid_to_battery.is_non_negative()
            || !self.discharge.is_non_negative()
        {
            return Err(EnergyDecisionError::NegativeAmount);
        }
        grid.check_draw(self.grid_total())?;
        let c = self.charge_total();
        let d = self.discharge;
        if c.as_joules() > EPS_JOULES && d.as_joules() > EPS_JOULES {
            return Err(BatteryError::SimultaneousChargeDischarge.into());
        }
        if c.as_joules() > battery.max_charge_now().as_joules() + EPS_JOULES {
            return Err(BatteryError::ChargeExceedsLimit {
                requested: c,
                limit: battery.max_charge_now(),
            }
            .into());
        }
        if d.as_joules() > battery.max_discharge_now().as_joules() + EPS_JOULES {
            return Err(BatteryError::DischargeExceedsLimit {
                requested: d,
                limit: battery.max_discharge_now(),
            }
            .into());
        }
        let supplied = self.supplied();
        if (supplied.as_joules() - demand.as_joules()).abs() > EPS_JOULES {
            return Err(EnergyDecisionError::Unbalanced { supplied, demand });
        }
        Ok(())
    }

    /// Applies the battery side of the decision (Eq. (4)).
    ///
    /// # Errors
    ///
    /// Propagates [`BatteryError`] from [`Battery::apply`]; call
    /// [`EnergyDecision::validate`] first to get the richer error.
    pub fn apply_to_battery(&self, battery: &mut Battery) -> Result<(), BatteryError> {
        battery.apply(self.charge_total(), self.discharge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(x: f64) -> Energy {
        Energy::from_joules(x)
    }

    fn battery_half() -> Battery {
        Battery::with_level(j(100.0), j(40.0), j(40.0), j(50.0))
    }

    fn grid_on() -> GridConnection {
        GridConnection::new(true, j(50.0))
    }

    fn split(output: f64, to_demand: f64, to_battery: f64, waste: f64) -> RenewableSplit {
        RenewableSplit::new(j(output), j(to_demand), j(to_battery), j(waste)).unwrap()
    }

    #[test]
    fn balanced_grid_plus_renewable_passes() {
        let d = EnergyDecision::new(j(10.0), j(0.0), split(20.0, 20.0, 0.0, 0.0), j(0.0));
        d.validate(j(30.0), &battery_half(), &grid_on()).unwrap();
        assert_eq!(d.supplied(), j(30.0));
        assert_eq!(d.grid_total(), j(10.0));
    }

    #[test]
    fn discharge_serves_demand() {
        let d = EnergyDecision::new(j(0.0), j(0.0), split(0.0, 0.0, 0.0, 0.0), j(30.0));
        d.validate(j(30.0), &battery_half(), &grid_on()).unwrap();
        let mut b = battery_half();
        d.apply_to_battery(&mut b).unwrap();
        assert_eq!(b.level(), j(20.0));
    }

    #[test]
    fn unbalanced_rejected() {
        let d = EnergyDecision::new(j(5.0), j(0.0), split(0.0, 0.0, 0.0, 0.0), j(0.0));
        assert!(matches!(
            d.validate(j(30.0), &battery_half(), &grid_on()),
            Err(EnergyDecisionError::Unbalanced { .. })
        ));
    }

    #[test]
    fn charge_and_discharge_rejected() {
        let d = EnergyDecision::new(j(0.0), j(10.0), split(0.0, 0.0, 0.0, 0.0), j(10.0));
        assert!(matches!(
            d.validate(j(10.0), &battery_half(), &grid_on()),
            Err(EnergyDecisionError::Battery(
                BatteryError::SimultaneousChargeDischarge
            ))
        ));
    }

    #[test]
    fn renewable_charge_counts_toward_battery_limit() {
        // c^r = 45 > c^max = 40.
        let d = EnergyDecision::new(j(0.0), j(0.0), split(45.0, 0.0, 45.0, 0.0), j(0.0));
        assert!(matches!(
            d.validate(j(0.0), &battery_half(), &grid_on()),
            Err(EnergyDecisionError::Battery(
                BatteryError::ChargeExceedsLimit { .. }
            ))
        ));
    }

    #[test]
    fn grid_limit_enforced() {
        let d = EnergyDecision::new(j(40.0), j(20.0), split(0.0, 0.0, 0.0, 0.0), j(0.0));
        assert!(matches!(
            d.validate(j(40.0), &battery_half(), &grid_on()),
            Err(EnergyDecisionError::Grid(GridError::ExceedsLimit { .. }))
        ));
    }

    #[test]
    fn disconnected_node_cannot_draw() {
        let d = EnergyDecision::new(j(5.0), j(0.0), split(0.0, 0.0, 0.0, 0.0), j(0.0));
        assert!(matches!(
            d.validate(j(5.0), &battery_half(), &GridConnection::offline()),
            Err(EnergyDecisionError::Grid(GridError::Disconnected))
        ));
    }

    #[test]
    fn disconnected_node_lives_on_renewable_and_battery() {
        let d = EnergyDecision::new(j(0.0), j(0.0), split(12.0, 12.0, 0.0, 0.0), j(8.0));
        d.validate(j(20.0), &battery_half(), &GridConnection::offline())
            .unwrap();
    }

    #[test]
    fn idle_decision_validates_with_zero_demand() {
        let d = EnergyDecision::idle(j(7.0));
        d.validate(j(0.0), &battery_half(), &grid_on()).unwrap();
        assert_eq!(d.renewable().curtailed(), j(7.0));
    }

    #[test]
    fn error_source_chains() {
        let e = EnergyDecisionError::Grid(GridError::Disconnected);
        assert!(std::error::Error::source(&e).is_some());
    }
}
