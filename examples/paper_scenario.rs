//! Runs the paper's full §VI evaluation scenario (2000 m × 2000 m, 2 base
//! stations, 20 users, 5 bands, 5 sessions, 100 one-minute slots) with
//! the lower-bound controller co-running, and prints a compact summary of
//! every quantity the paper's Fig. 2 plots.
//!
//! ```text
//! cargo run --release --example paper_scenario [seed]
//! ```

use greencell::net::NodeId;
use greencell::sim::{Scenario, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    let mut scenario = Scenario::paper(seed);
    scenario.track_lower_bound = true;

    let mut sim = Simulator::new(&scenario)?;
    println!("=== paper scenario (seed {seed}) ===");
    println!(
        "V = {:.0e}, λ = {}, K_max = {}, δ = {} bits, Δt = 1 min",
        scenario.v,
        scenario.lambda,
        scenario.k_max,
        scenario.packet_size.as_bits(),
    );
    println!(
        "drift constants: β = {:.0} pkt, γ_max = {:.3}, B = {:.3e}",
        sim.controller().beta(),
        sim.controller().gamma_max(),
        sim.controller().penalty_b(),
    );

    let metrics = sim.run()?.clone();

    println!();
    println!("--- Fig 2(a) inputs ---");
    println!(
        "upper bound ψ_P3 (avg f-cost): {:.6}",
        metrics.average_cost()
    );
    println!(
        "relaxed controller avg f-cost: {:.6}",
        metrics.relaxed_cost_series().mean()
    );
    println!(
        "lower bound ψ̄ − B/V:           {:.3e}",
        metrics.lower_bound().unwrap()
    );

    println!();
    println!("--- Fig 2(b)/(c): data queues (packets) ---");
    println!(
        "BS backlog:   final {:.0}, peak {:.0}",
        metrics.backlog_bs_series().last().unwrap(),
        metrics.backlog_bs_series().max().unwrap()
    );
    println!(
        "user backlog: final {:.0}, peak {:.0}",
        metrics.backlog_users_series().last().unwrap(),
        metrics.backlog_users_series().max().unwrap()
    );

    println!();
    println!("--- Fig 2(d)/(e): energy buffers ---");
    println!(
        "BS buffers:   final {:.3} kWh",
        metrics.buffer_bs_series().last().unwrap()
    );
    println!(
        "user buffers: final {:.1} Wh",
        metrics.buffer_users_series().last().unwrap()
    );

    println!();
    println!("--- traffic ---");
    println!(
        "admitted {:.0} pkt/slot avg, routed {:.0} pkt/slot avg, delivered {} pkt total",
        metrics.admitted_series().mean(),
        metrics.routed_series().mean(),
        metrics.delivered(),
    );
    println!(
        "scheduled {:.1} transmissions/slot avg, {} shed",
        metrics.scheduled_series().mean(),
        metrics.shed(),
    );

    // Peek at a few per-node states.
    println!();
    println!(
        "--- sample node states after {} slots ---",
        scenario.horizon
    );
    let topo = sim.network().topology().clone();
    for id in topo.ids().take(4) {
        let node = topo.node(id);
        println!(
            "{}: battery {:.3} kWh, backlog {} ",
            node,
            sim.controller()
                .battery(NodeId::from_index(id.index()))
                .level()
                .as_kilowatt_hours(),
            sim.controller().data().node_backlog(id),
        );
    }
    Ok(())
}
