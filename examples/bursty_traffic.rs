//! Extension experiment: the paper assumes constant per-slot demand and
//! i.i.d. grid connectivity. This example swaps in Poisson (bursty)
//! session arrivals and a sticky Markov on/off grid, and shows the
//! Lyapunov controller absorbing both without losing stability — the
//! drift analysis never used the i.i.d. assumption beyond its mean.
//!
//! ```text
//! cargo run --release --example bursty_traffic [seed]
//! ```

use greencell::queue::StabilityEstimator;
use greencell::sim::{DemandModel, GridModel, Scenario, Simulator};

fn run(label: &str, scenario: &Scenario) -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = Simulator::new(scenario)?;
    let metrics = sim.run()?.clone();
    let mut stability = StabilityEstimator::new();
    for &x in metrics.backlog_bs_series().values() {
        stability.record(x);
    }
    println!(
        "{label:<38} cost {:>9.6}  delivered {:>7}  peak backlog {:>7.0}  saturating {}",
        metrics.average_cost(),
        metrics.delivered(),
        stability.peak_backlog(),
        stability.is_saturating(0.3),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    println!("=== bursty traffic & sticky connectivity (seed {seed}) ===");
    println!("All runs share topology, spectrum, and renewable sample paths.\n");

    let mut base = Scenario::paper(seed);
    base.horizon = 200;
    run("paper model (constant, i.i.d. grid)", &base)?;

    let mut bursty = base.clone();
    bursty.demand_model = DemandModel::Poisson;
    run("Poisson demand (same mean)", &bursty)?;

    let mut sticky = base.clone();
    sticky.grid_model = GridModel::Markov {
        stay_on: 0.95,
        stay_off: 0.9,
    };
    run("Markov grid (bursty connectivity)", &sticky)?;

    let mut both = bursty.clone();
    both.grid_model = GridModel::Markov {
        stay_on: 0.95,
        stay_off: 0.9,
    };
    run("both extensions", &both)?;

    println!();
    println!("The admission valve k_s = K_max·1{{Q < λV}} bounds every queue");
    println!("regardless of the arrival law, so all four runs stay strongly stable.");
    println!("Note: the provider's bill is unchanged by the grid model because only");
    println!("base stations are billed (§II-E) and they are always connected; user");
    println!("connectivity only matters when their batteries and renewables run dry.");
    Ok(())
}
