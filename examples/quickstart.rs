//! Quickstart: build a small green multi-hop cellular network, run the
//! Lyapunov controller for an hour of simulated time, and print what
//! happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use greencell::sim::{Scenario, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small scenario: 1 base station, 4 users, 2 spectrum bands,
    // 2 downlink sessions at 100 kbps each.
    let mut scenario = Scenario::tiny(42);
    scenario.horizon = 60; // one hour of one-minute slots

    let mut sim = Simulator::new(&scenario)?;
    let metrics = sim.run()?.clone();

    println!("=== greencell quickstart ===");
    println!(
        "network: {} base station(s), {} user(s), {} band(s), {} session(s)",
        sim.network().topology().base_station_count(),
        sim.network().topology().user_count(),
        sim.network().band_count(),
        sim.network().session_count(),
    );
    println!("horizon: {} one-minute slots", scenario.horizon);
    println!();
    println!(
        "time-averaged energy cost f(P): {:.6}",
        metrics.average_cost()
    );
    println!(
        "total grid energy drawn:        {:.4} kWh",
        metrics.grid_series().values().iter().sum::<f64>()
    );
    println!("packets delivered:              {}", metrics.delivered());
    println!(
        "final BS backlog:               {:.0} packets",
        metrics.backlog_bs_series().last().unwrap_or(0.0)
    );
    println!(
        "final user backlog:             {:.0} packets",
        metrics.backlog_users_series().last().unwrap_or(0.0)
    );
    println!(
        "final BS battery level:         {:.3} kWh",
        metrics.buffer_bs_series().last().unwrap_or(0.0)
    );
    println!("transmissions shed (energy):    {}", metrics.shed());

    // Strong stability in action: backlogs are bounded, not growing.
    let peak = metrics.backlog_bs_series().max().unwrap_or(0.0);
    let lambda_v = scenario.lambda * scenario.v;
    println!();
    println!(
        "peak BS backlog {peak:.0} stays within the admission bound λV + K = {:.0}",
        lambda_v * 2.0 * sim.network().session_count() as f64 + 1000.0
    );
    Ok(())
}
