//! Demonstrates Theorem 3 empirically: every queue in the network stays
//! strongly stable under the proposed controller, across a sweep of
//! traffic intensities — and shows what the stability estimators report
//! when a system is deliberately overloaded beyond the admission valve.
//!
//! ```text
//! cargo run --release --example stability_analysis [seed]
//! ```

use greencell::queue::StabilityEstimator;
use greencell::sim::{Scenario, Simulator};
use greencell::units::DataRate;

fn run_case(label: &str, scenario: &Scenario) -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = Simulator::new(scenario)?;
    let metrics = sim.run()?;

    // Feed the recorded total-backlog trajectory into the Definition 2
    // estimators.
    let mut bs = StabilityEstimator::new();
    for &x in metrics.backlog_bs_series().values() {
        bs.record(x);
    }
    let mut users = StabilityEstimator::new();
    for &x in metrics.backlog_users_series().values() {
        users.record(x);
    }

    println!("--- {label} ---");
    println!(
        "BS queues:   avg {:>9.1}, peak {:>9.0}, Q(T)/T {:>8.2}, saturating: {}",
        bs.average_backlog(),
        bs.peak_backlog(),
        bs.terminal_ratio(),
        bs.is_saturating(0.25),
    );
    println!(
        "user queues: avg {:>9.1}, peak {:>9.0}, Q(T)/T {:>8.2}, saturating: {}",
        users.average_backlog(),
        users.peak_backlog(),
        users.terminal_ratio(),
        users.is_saturating(0.25),
    );
    println!(
        "energy buffers bounded by capacity: BS {:.2} kWh ≤ {:.2} kWh",
        metrics.buffer_bs_series().max().unwrap_or(0.0),
        2.0 * scenario.bs_battery_capacity.as_kilowatt_hours(),
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    println!("=== strong stability analysis (seed {seed}) ===");
    println!("Theorem 3: the proposed algorithm keeps all queues strongly stable.");
    println!("The admission valve k_s = K_max·1{{Q < λV}} caps every source queue");
    println!("at λV + K_max regardless of offered load; run long horizons to see");
    println!("the running averages flatten.");
    println!();

    // Nominal load.
    let mut nominal = Scenario::paper(seed);
    nominal.horizon = 300;
    run_case("nominal demand (100 kbps/session)", &nominal)?;

    // 4x the demand: still stable — the valve throttles admission.
    let mut heavy = nominal.clone();
    heavy.session_demand = DataRate::from_kilobits_per_second(400.0);
    heavy.k_max = greencell::units::Packets::new(4000);
    run_case(
        "4x demand (valve throttles, queues cap at λV + K_max)",
        &heavy,
    )?;

    // Small V: tighter valve, smaller queues (the V-tradeoff of Fig. 2(b)).
    let mut small_v = nominal.clone();
    small_v.v = 2e4;
    run_case("V = 2e4 (tighter valve ⇒ smaller queues)", &small_v)?;

    Ok(())
}
