//! Extension experiment: time-of-use electricity pricing. The paper bills
//! a flat `f(P(t))` per slot; real tariffs have peak hours. Because S4
//! prices every grid purchase at the *marginal* cost `V·m·f'(P)`, a peak
//! multiplier `m > 1` makes the controller defer battery charging to
//! off-peak slots automatically — no new code path, just the equilibrium.
//!
//! ```text
//! cargo run --release --example peak_pricing [seed]
//! ```

use greencell::sim::{report, Scenario, Simulator, TouPricing};
use greencell::stochastic::Series;

fn run(label: &str, scenario: &Scenario) -> Result<Series, Box<dyn std::error::Error>> {
    let mut sim = Simulator::new(scenario)?;
    let metrics = sim.run()?.clone();
    let total: f64 = metrics.grid_series().values().iter().sum();
    println!(
        "{label:<28} grid drawn {total:>8.4} kWh, avg tariffed cost {:>9.6}",
        metrics.average_cost()
    );
    Ok(metrics.grid_series().clone())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    println!("=== time-of-use pricing (seed {seed}) ===");
    println!("Batteries start empty; V = 1 so the marginal price actually bites");
    println!("(at the paper's V ≥ 1e5 the z-shift swamps any tariff — see");
    println!("EXPERIMENTS.md). Peak slots cost 100x.\n");

    let mut flat = Scenario::tiny(seed);
    flat.horizon = 48;
    flat.initial_battery_fraction = 0.0;
    flat.v = 1.0;

    let mut tou = flat.clone();
    tou.pricing = TouPricing::Periodic {
        period_slots: 12,
        peak_slots: 6,
        peak_multiplier: 100.0,
    };

    let flat_series = run("flat tariff", &flat)?;
    let tou_series = run("peak/off-peak tariff", &tou)?;

    println!();
    println!("grid draw per slot (peak slots are the first 6 of every 12):");
    println!("  flat {}", report::sparkline(&flat_series));
    println!("  ToU  {}", report::sparkline(&tou_series));

    // Quantify the shift.
    let split = |s: &Series| -> (f64, f64) {
        s.values()
            .iter()
            .enumerate()
            .fold(
                (0.0, 0.0),
                |(p, o), (t, &v)| {
                    if t % 12 < 6 {
                        (p + v, o)
                    } else {
                        (p, o + v)
                    }
                },
            )
    };
    let (flat_peak, flat_off) = split(&flat_series);
    let (tou_peak, tou_off) = split(&tou_series);
    println!();
    println!(
        "peak-slot share of purchases: flat {:.0}%, ToU {:.0}%",
        100.0 * flat_peak / (flat_peak + flat_off).max(1e-12),
        100.0 * tou_peak / (tou_peak + tou_off).max(1e-12)
    );
    Ok(())
}
