//! Compares the four network architectures of the paper's Fig. 2(f) —
//! multi-hop vs. one-hop, with and without renewable energy — under
//! common random numbers, and prints both absolute and normalized costs.
//!
//! ```text
//! cargo run --release --example architecture_comparison [seed]
//! ```

use greencell::sim::{experiments, Architecture, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    let base = Scenario::fig2f_calibrated(seed);
    let v_values = [1e5, 3e5, 5e5];

    println!("=== architecture comparison (seed {seed}) ===");
    println!(
        "calibration: batteries start full; η = {:.0e} W/Hz (see EXPERIMENTS.md)",
        base.noise_density
    );
    println!();

    let rows = experiments::fig2f(&base, &v_values)?;
    let ours_avg: f64 = rows[0].costs.iter().sum::<f64>() / rows[0].costs.len() as f64;

    println!(
        "{:<42} {:>12} {:>12} {:>12} {:>10}",
        "architecture", "V=1e5", "V=3e5", "V=5e5", "vs ours"
    );
    for row in &rows {
        let avg: f64 = row.costs.iter().sum::<f64>() / row.costs.len() as f64;
        println!(
            "{:<42} {:>12.6} {:>12.6} {:>12.6} {:>9.2}x",
            row.architecture.to_string(),
            row.costs[0],
            row.costs[1],
            row.costs[2],
            if ours_avg > 0.0 {
                avg / ours_avg
            } else {
                f64::NAN
            },
        );
    }

    println!();
    let renewable_saves = rows[1].costs[0] > rows[0].costs[0];
    let multihop_saves = rows[3].costs[0] > rows[2].costs[0];
    println!("renewables reduce cost (ours vs multi-hop w/o RE): {renewable_saves}");
    println!("relaying reduces cost  (one-hop w/ RE vs ours; one-hop w/o RE vs multi-hop w/o RE): {multihop_saves}");
    let _ = Architecture::ALL; // exercised above via experiments::fig2f
    Ok(())
}
