//! Minimal, std-only, offline re-implementation of the subset of the
//! `criterion` API used by this workspace's benches.
//!
//! The real `criterion` crate is unavailable in the build environment, so
//! this shim provides source compatibility for `Criterion::default()`,
//! `.sample_size(..)`, `.bench_function(name, |b| b.iter(..))`,
//! `criterion_group!` (both block and positional forms), `criterion_main!`,
//! and `black_box`. Each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and prints min / median / mean per-iteration times.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };

        // Warm-up: one untimed run so lazy init / cache effects settle.
        f(&mut bencher);
        bencher.samples.clear();

        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if Instant::now() >= deadline {
                break;
            }
        }

        let mut per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|s| s.total.as_secs_f64() / s.iters.max(1) as f64)
            .collect();
        if per_iter.is_empty() {
            println!("{name}: no samples collected");
            return self;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name}: {} samples, per-iter min {} / median {} / mean {}",
            per_iter.len(),
            format_secs(min),
            format_secs(median),
            format_secs(mean)
        );
        self
    }

    pub fn final_summary(&self) {}
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

struct Sample {
    iters: u64,
    total: Duration,
}

pub struct Bencher {
    samples: Vec<Sample>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        let total = start.elapsed();
        self.samples.push(Sample { iters: 1, total });
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod shim_tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // warm-up + up to 5 samples
        assert!(runs >= 2);
    }
}
