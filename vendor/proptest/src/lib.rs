//! Minimal, std-only, offline re-implementation of the subset of the
//! `proptest` API used by this workspace.
//!
//! The real `proptest` crate is unavailable in the build environment (the
//! registry is unreachable), so this shim provides source compatibility for:
//!
//! - `proptest!` blocks with an optional `#![proptest_config(..)]` header and
//!   parameters of the form `name in strategy` (with optional `mut`),
//! - numeric range strategies (`0u64..5_000`, `0.0..1.0`, inclusive ranges),
//! - `any::<T>()` for primitive types,
//! - `prop::collection::vec(strategy, size)` with exact or ranged sizes,
//! - tuple strategies, `Just`, and `.prop_map(..)`,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! - replay of `*.proptest-regressions` files. Upstream's `cc` hash encodes
//!   an RNG seed we cannot reproduce, but every entry also carries a
//!   `# shrinks to name = value, ...` comment with the concrete shrunk
//!   inputs; the shim parses those values and replays them before running
//!   fresh random cases. New failures are appended in the same format.
//!
//! Shrinking is intentionally not implemented: on failure the concrete
//! failing inputs are printed (and persisted) instead.

use std::collections::HashMap;
use std::fmt::Debug;
use std::io::Write as _;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::str::FromStr;

// ---------------------------------------------------------------------------
// Deterministic RNG (xoshiro256** seeded via SplitMix64, self-contained).
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer below `bound` (Lemire-style rejection).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= bound || lo >= x.wrapping_neg() % bound {
                return hi;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and implementations.
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value: Clone + Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Parse a value recorded in a `# shrinks to` regression comment.
    /// Strategies that cannot round-trip their values return `None`, in
    /// which case the regression entry is skipped for that parameter.
    fn parse_regression(&self, _s: &str) -> Option<Self::Value> {
        None
    }

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn parse_regression(&self, s: &str) -> Option<Self::Value> {
        (**self).parse_regression(s)
    }
}

pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn StrategyObject<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

trait StrategyObject<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
    fn parse_obj(&self, s: &str) -> Option<T>;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn parse_obj(&self, s: &str) -> Option<S::Value> {
        self.parse_regression(s)
    }
}

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_obj(rng)
    }
    fn parse_regression(&self, s: &str) -> Option<T> {
        self.inner.parse_obj(s)
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- integer ranges --------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Bias toward the boundaries (as upstream proptest does):
                // edge cases are where properties break.
                match rng.below(16) {
                    0 => return self.start,
                    1 => return (self.end as i128 - 1) as $t,
                    _ => {}
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn parse_regression(&self, s: &str) -> Option<$t> {
                <$t as FromStr>::from_str(s).ok()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
            fn parse_regression(&self, s: &str) -> Option<$t> {
                <$t as FromStr>::from_str(s).ok()
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- float ranges ----------------------------------------------------------

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Bias toward boundary and special values (as upstream
                // proptest's shrinking converges to): exact endpoints and
                // exact zero are where float properties break.
                match rng.below(16) {
                    0 => return self.start,
                    1 if self.start <= 0.0 && 0.0 < self.end => return 0.0,
                    2 => {
                        let tiny = (self.end - self.start) * 1e-12;
                        return self.start + tiny;
                    }
                    _ => {}
                }
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
            fn parse_regression(&self, s: &str) -> Option<$t> {
                <$t as FromStr>::from_str(s).ok()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let u = rng.next_f64() as $t;
                start + u * (end - start)
            }
            fn parse_regression(&self, s: &str) -> Option<$t> {
                <$t as FromStr>::from_str(s).ok()
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// --- any::<T>() ------------------------------------------------------------

pub trait Arbitrary: Clone + Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
    fn parse(s: &str) -> Option<Self>;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn parse(s: &str) -> Option<$t> {
                <$t as FromStr>::from_str(s).ok()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn parse(s: &str) -> Option<bool> {
        s.parse().ok()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.next_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
    fn parse(s: &str) -> Option<f64> {
        s.parse().ok()
    }
}

#[derive(Clone, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn parse_regression(&self, s: &str) -> Option<T> {
        T::parse(s)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// --- collections -----------------------------------------------------------

#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min
            + if span == 0 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Test-case plumbing.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Present for source compatibility with struct-update syntax.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Tuple-of-strategies helper used by the `proptest!` macro expansion.
// ---------------------------------------------------------------------------

pub trait StrategyTuple {
    type Values: Clone + Debug;

    fn generate_all(&self, rng: &mut TestRng) -> Self::Values;

    /// Build a full value tuple from a parsed regression entry, or `None` if
    /// any parameter is missing or unparseable.
    fn parse_all(&self, names: &[&str], entry: &HashMap<String, String>) -> Option<Self::Values>;

    /// Render each component for failure reporting / regression persistence.
    fn debug_all(&self, values: &Self::Values) -> Vec<String>;
}

macro_rules! strategy_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> StrategyTuple for ($($name,)+) {
            type Values = ($($name::Value,)+);

            fn generate_all(&self, rng: &mut TestRng) -> Self::Values {
                ($(self.$idx.generate(rng),)+)
            }

            fn parse_all(
                &self,
                names: &[&str],
                entry: &HashMap<String, String>,
            ) -> Option<Self::Values> {
                Some(($(
                    self.$idx.parse_regression(entry.get(names[$idx])?)?,
                )+))
            }

            fn debug_all(&self, values: &Self::Values) -> Vec<String> {
                vec![$(format!("{:?}", values.$idx)),+]
            }
        }
    )*};
}

strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

// ---------------------------------------------------------------------------
// Regression-file handling.
// ---------------------------------------------------------------------------

fn regression_path(manifest_dir: &str, source_file: &str) -> Option<PathBuf> {
    // `file!()` is workspace-relative (e.g. `crates/core/tests/prop_s1.rs`);
    // the manifest dir is absolute (e.g. `/root/repo/crates/core`). Try the
    // source path against the manifest dir and each of its ancestors.
    let rel = Path::new(source_file).with_extension("proptest-regressions");
    let mut dir = Some(Path::new(manifest_dir));
    while let Some(d) = dir {
        let candidate = d.join(&rel);
        if candidate.exists() {
            return Some(candidate);
        }
        dir = d.parent();
    }
    // Fall back to <manifest>/tests/<stem>.proptest-regressions for writes.
    let stem = rel.file_name()?.to_owned();
    Some(Path::new(manifest_dir).join("tests").join(stem))
}

/// Parse `# shrinks to name = value, name2 = value2` comments from `cc` lines.
fn parse_regression_file(path: &Path) -> Vec<HashMap<String, String>> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("cc ") {
            continue;
        }
        let Some(comment) = line.split('#').nth(1) else {
            continue;
        };
        let Some(rest) = comment.trim().strip_prefix("shrinks to ") else {
            continue;
        };
        let mut entry = HashMap::new();
        for pair in rest.split(',') {
            if let Some((name, value)) = pair.split_once('=') {
                entry.insert(name.trim().to_string(), value.trim().to_string());
            }
        }
        if !entry.is_empty() {
            entries.push(entry);
        }
    }
    entries
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn persist_failure(path: &Path, names: &[&str], rendered: &[String]) {
    let shrunk: Vec<String> = names
        .iter()
        .zip(rendered)
        .map(|(n, v)| format!("{n} = {v}"))
        .collect();
    let comment = shrunk.join(", ");
    let hash = fnv1a(comment.as_bytes());
    let line = format!("cc {hash:016x}{hash:016x}{hash:016x}{hash:016x} # shrinks to {comment}\n");
    if let Ok(existing) = std::fs::read_to_string(path) {
        if existing.contains(comment.as_str()) {
            return;
        }
    }
    let header = if path.exists() {
        String::new()
    } else {
        "# Seeds for failure cases proptest has generated in the past. It is\n\
         # automatically read and these particular cases re-run before any\n\
         # novel cases are generated.\n\
         #\n\
         # It is recommended to check this file in to source control so that\n\
         # everyone who runs the test benefits from these saved cases.\n"
            .to_string()
    };
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(header.as_bytes());
        let _ = f.write_all(line.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

/// Execute one property test: regression replay first, then fresh cases.
///
/// Called from the `proptest!` macro expansion; not part of the public
/// upstream API.
#[allow(clippy::too_many_arguments)]
pub fn run_property_test<S, F>(
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    config: &ProptestConfig,
    names: &[&str],
    strategies: &S,
    run: F,
) where
    S: StrategyTuple,
    F: Fn(S::Values) -> TestCaseResult + std::panic::RefUnwindSafe,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let reg_path = regression_path(manifest_dir, source_file);

    let run_case = |values: S::Values, origin: &str| -> Result<(), String> {
        let rendered = strategies.debug_all(&values);
        let outcome = catch_unwind(AssertUnwindSafe(|| run(values)));
        let failure = match outcome {
            Ok(Ok(())) => None,
            Ok(Err(TestCaseError::Reject(_))) => None,
            Ok(Err(TestCaseError::Fail(msg))) => Some(msg),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "test panicked".to_string());
                Some(msg)
            }
        };
        if let Some(msg) = failure {
            let detail: Vec<String> = names
                .iter()
                .zip(&rendered)
                .map(|(n, v)| format!("{} = {}", n.trim_start_matches("mut "), v))
                .collect();
            if origin == "random" {
                if let Some(path) = &reg_path {
                    let clean: Vec<&str> =
                        names.iter().map(|n| n.trim_start_matches("mut ")).collect();
                    persist_failure(path, &clean, &rendered);
                }
            }
            return Err(format!(
                "proptest case failed ({origin}): {msg}\n  inputs: {}",
                detail.join(", ")
            ));
        }
        Ok(())
    };

    let clean_names: Vec<&str> = names.iter().map(|n| n.trim_start_matches("mut ")).collect();

    // 1. Replay persisted regressions whose parameter sets match this test.
    if let Some(path) = &reg_path {
        for entry in parse_regression_file(path) {
            let entry_names: Vec<&str> = entry.keys().map(|k| k.as_str()).collect();
            let matches_test = entry_names.len() == clean_names.len()
                && clean_names.iter().all(|n| entry.contains_key(*n));
            if !matches_test {
                continue;
            }
            if let Some(values) = strategies.parse_all(&clean_names, &entry) {
                if std::env::var_os("PROPTEST_VERBOSE").is_some() {
                    eprintln!(
                        "[proptest shim] {test_name}: replaying regression {:?}",
                        strategies.debug_all(&values)
                    );
                }
                if let Err(msg) = run_case(values, "regression replay") {
                    panic!("{msg}");
                }
            } else if std::env::var_os("PROPTEST_VERBOSE").is_some() {
                eprintln!(
                    "[proptest shim] {test_name}: could not parse regression entry {entry:?}"
                );
            }
        }
    }

    // 2. Fresh deterministic cases. The stream depends only on the test's
    //    identity, never on thread scheduling or other tests.
    let stream_seed = fnv1a(format!("{source_file}::{test_name}").as_bytes());
    let mut rng = TestRng::seed_from(stream_seed);
    for case in 0..cases {
        let values = strategies.generate_all(&mut rng);
        if let Err(msg) = run_case(values, "random") {
            panic!("{msg} (case {case}/{cases})");
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    // With config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($param:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategies = ($($strategy,)+);
                $crate::run_property_test(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    stringify!($name),
                    &__config,
                    &[$(stringify!($param)),+],
                    &__strategies,
                    |__values| {
                        let ($($param,)+) = __values;
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    // Without config header.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($param:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($param in $strategy),+) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------------
// Shim self-tests.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod shim_tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-4i32..=4).generate(&mut rng);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec((0u64..100, 0.0f64..1.0), 0..10);
        let a: Vec<_> = {
            let mut rng = TestRng::seed_from(99);
            (0..20).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::seed_from(99);
            (0..20).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn regression_comment_parsing() {
        let dir = std::env::temp_dir().join("proptest-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.proptest-regressions");
        std::fs::write(
            &path,
            "# header comment\n\
             cc deadbeef # shrinks to seed = 3319\n\
             cc cafebabe # shrinks to z = 0.0, demand = 0.25, v = 0.5\n",
        )
        .unwrap();
        let entries = parse_regression_file(&path);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("seed").unwrap(), "3319");
        assert_eq!(entries[1].get("demand").unwrap(), "0.25");
        let strategies = (0u64..5_000,);
        let parsed = strategies.parse_all(&["seed"], &entries[0]).unwrap();
        assert_eq!(parsed.0, 3319);
        std::fs::remove_file(&path).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(x in 0u64..100, mut v in prop::collection::vec(any::<i32>(), 0..5)) {
            v.push(x as i32);
            prop_assert!(v.last() == Some(&(x as i32)));
            prop_assert_eq!(v.is_empty(), false);
        }
    }
}
